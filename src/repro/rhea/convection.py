"""RHEA: the coupled adaptive mantle convection simulation.

Implements the solution strategy of Section III on top of the ALPS mesh
layer: each time step splits into an explicit SUPG advection-diffusion
update of temperature and a variable-viscosity Stokes solve for the flow,
with the strain-rate-dependent (yielding) viscosity handled by Picard
fixed-point iteration.  The mesh is re-adapted every ``adapt_every`` steps
through the Figure-4 pipeline, transferring temperature and velocity.

Nondimensionalization follows eqs. (1)-(3): buoyancy ``Ra T e_z`` drives
the flow, kappa = 1, and the Rayleigh number controls vigor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .. import obs
from ..amr import adapt_mesh
from ..fem import AdvectionDiffusion, StokesSystem, element_velocity_from_nodal
from ..mesh import Mesh, extract_mesh
from ..mesh.opcache import cache_disabled, operator_cache
from ..octree import LinearOctree
from ..solvers import (
    GMGStokesPreconditioner,
    LaggedStokesPreconditioner,
    StokesBlockPreconditioner,
    minres,
)
from .error import combined_indicator
from .viscosity import ArrheniusViscosity, element_temperature, strain_rate_invariant

__all__ = ["ConfigError", "RheaConfig", "MantleConvection", "conductive_profile"]


class ConfigError(ValueError):
    """Structured :class:`RheaConfig` validation failure.

    ``errors`` is a list of ``(field, message)`` pairs — every violated
    constraint, not just the first — so admission layers (the fleet
    service) can report all problems with a spec at once.
    """

    def __init__(self, errors: list):
        self.errors = list(errors)
        detail = "; ".join(f"{f}: {m}" for f, m in self.errors)
        super().__init__(f"invalid RheaConfig: {detail}")


def _finite(value) -> bool:
    try:
        return bool(np.isfinite(float(value)))
    except (TypeError, ValueError):
        return False


def conductive_profile(coords: np.ndarray, perturbation: float = 0.05, domain=None) -> np.ndarray:
    """Initial temperature: conductive (1 - z') plus a smooth perturbation
    that seeds convection; ``z'`` is depth-normalized."""
    d = np.asarray(domain if domain is not None else (1.0, 1.0, 1.0), dtype=np.float64)
    x, y, z = (coords[:, i] / d[i] for i in range(3))
    base = 1.0 - z
    pert = perturbation * np.cos(np.pi * x) * np.cos(np.pi * y) * np.sin(np.pi * z)
    return np.clip(base + pert, 0.0, 1.0)


@dataclass
class RheaConfig:
    """Physical and numerical parameters of a RHEA run."""

    Ra: float = 1e5
    domain: tuple = (1.0, 1.0, 1.0)
    kappa: float = 1.0
    gamma: float = 0.0
    viscosity: Callable = field(default_factory=ArrheniusViscosity)
    initial_level: int = 3
    min_level: int = 1
    max_level: int = 6
    target_elements: int | None = None
    adapt_every: int = 16
    cfl: float = 0.4
    picard_iterations: int = 3
    picard_tol: float = 1e-2
    stokes_tol: float = 1e-6
    stokes_maxiter: int = 500
    viscosity_weight: float = 0.5
    #: weight of the strain-rate-localization term in the refinement
    #: criterion (refines yielding zones / plate boundaries, Sec. VI)
    strain_weight: float = 0.3
    #: refinement boost for elements where the plastic yield limiter is
    #: active — drives the ~1.5 km resolution in the weak zones of Fig. 11
    yield_weight: float = 0.75
    velocity_bc: str = "free_slip"
    mark_tol: float = 0.08
    #: memoize mesh-derived operators (scatter patterns, Z3, dof maps)
    #: between Picard passes and time steps; value-transparent, so results
    #: are bitwise identical with caching off
    cache_operators: bool = True
    #: lagged multigrid setup: reuse the preconditioner hierarchy until
    #: the element viscosity drifts past this relative threshold.
    #: ``None`` rebuilds on every Picard pass (the pre-amortization
    #: behavior); ``0.0`` reuses only for bitwise-unchanged viscosity.
    prec_lag_rtol: float | None = 0.3
    #: viscous-block preconditioner: ``"amg"`` (assembled smoothed-
    #: aggregation hierarchy, the paper's BoomerAMG analogue) or
    #: ``"gmg"`` (matrix-free geometric multigrid on the octree
    #: coarsening hierarchy — zero sparse assembly; see SOLVERS.md)
    stokes_preconditioner: str = "amg"
    #: warm-start MINRES from the previous velocity/pressure solution
    warm_start: bool = True
    #: element-apply kernel for the MINRES and SUPG hot loops:
    #: ``"tensor"`` (matrix-free sum-factorized, Section VII) or
    #: ``"matrix"`` (legacy assembled CSR)
    fem_variant: str = "tensor"
    #: bind a :class:`repro.obs.PhaseTimer` for the duration of
    #: :meth:`MantleConvection.run` if none is active (per-phase wall
    #: times, solver counters); read it back via ``repro.obs.active()``
    observe: bool = False
    #: AMR hot-path algorithm selectors (see DESIGN.md section 4e):
    #: ``"recursive"`` uses the search-free ghost construction,
    #: low-collective balance and sort-merge face iteration;
    #: ``"search"`` keeps the original sampling/probe kernels.  Both
    #: produce bitwise-identical meshes and fields.
    ghost_algorithm: str = "recursive"
    balance_algorithm: str = "recursive"
    face_algorithm: str = "recursive"

    def __post_init__(self):
        """Validate eagerly so a bad configuration fails at construction
        with a :class:`ConfigError` naming every violated field — not
        deep inside a run (fleet admission rejects specs through this)."""
        errors: list[tuple[str, str]] = []

        def choice(field: str, allowed: tuple):
            v = getattr(self, field)
            if v not in allowed:
                opts = " or ".join(repr(a) for a in allowed)
                errors.append((field, f"must be {opts}, got {v!r}"))

        def positive(field: str, minimum: float = 0.0, strict: bool = True):
            v = getattr(self, field)
            if not _finite(v):
                errors.append((field, f"must be a finite number, got {v!r}"))
            elif (float(v) <= minimum) if strict else (float(v) < minimum):
                op = ">" if strict else ">="
                errors.append((field, f"must be {op} {minimum:g}, got {v!r}"))

        choice("fem_variant", ("tensor", "matrix"))
        choice("stokes_preconditioner", ("amg", "gmg"))
        choice("ghost_algorithm", ("recursive", "search"))
        choice("balance_algorithm", ("recursive", "search"))
        choice("face_algorithm", ("recursive", "search"))
        choice("velocity_bc", ("free_slip", "no_slip"))
        positive("Ra", strict=False)
        positive("cfl")
        positive("kappa", strict=False)
        positive("picard_tol")
        positive("stokes_tol")
        positive("picard_iterations", minimum=1, strict=False)
        positive("stokes_maxiter", minimum=1, strict=False)
        positive("adapt_every", minimum=1, strict=False)
        if not callable(self.viscosity):
            errors.append(("viscosity", "must be callable (a viscosity law)"))
        levels = (self.min_level, self.initial_level, self.max_level)
        if all(isinstance(v, (int, np.integer)) for v in levels):
            if not 0 <= self.min_level <= self.initial_level <= self.max_level:
                errors.append((
                    "min_level",
                    "need 0 <= min_level <= initial_level <= max_level, "
                    f"got ({self.min_level}, {self.initial_level}, "
                    f"{self.max_level})",
                ))
        else:
            errors.append(("initial_level", f"levels must be integers, got {levels!r}"))
        try:
            if len(self.domain) != 3 or not all(_finite(d) and float(d) > 0 for d in self.domain):
                errors.append(("domain", f"must be 3 positive extents, got {self.domain!r}"))
        except TypeError:
            errors.append(("domain", f"must be 3 positive extents, got {self.domain!r}"))
        if errors:
            raise ConfigError(errors)


@dataclass
class StepDiagnostics:
    step: int
    time: float
    n_elements: int
    vrms: float
    nusselt: float
    mean_T: float
    minres_iterations: int
    picard_iterations: int
    eta_min: float
    eta_max: float
    timings: dict = field(default_factory=dict)


class MantleConvection:
    """Driver object holding the evolving mesh, fields, and solvers."""

    def __init__(
        self,
        config: RheaConfig | None = None,
        T_init: Callable[[np.ndarray], np.ndarray] | None = None,
        tree: LinearOctree | None = None,
        mesh: Mesh | None = None,
    ):
        self.config = config or RheaConfig()
        cfg = self.config
        if mesh is not None:
            # a pre-built (possibly registry-interned, cross-tenant
            # shared) mesh: extraction is deterministic, so an identical
            # structure implies identical node numbering and the shared
            # operator cache applies verbatim
            self.mesh = mesh
        else:
            if tree is None:
                tree = LinearOctree.uniform(cfg.initial_level)
            self.mesh = extract_mesh(
                tree, cfg.domain, face_algorithm=cfg.face_algorithm
            )
        t_init = T_init or (lambda c: conductive_profile(c, domain=cfg.domain))
        self._t_init = t_init
        Tn = t_init(self.mesh.node_coords())
        self.T = self.mesh.expand(Tn[self.mesh.indep_nodes])
        self.u = np.zeros((self.mesh.n_nodes, 3))
        self.eta_elem = np.ones(self.mesh.n_elements)
        self.edot_elem = np.zeros(self.mesh.n_elements)
        self.sim_time = 0.0
        self.step_count = 0
        self.history: list[StepDiagnostics] = []
        self._last_minres = 0
        self._last_picard = 0
        self._prec_lag = (
            LaggedStokesPreconditioner(
                rtol=cfg.prec_lag_rtol, kind=cfg.stokes_preconditioner
            )
            if cfg.prec_lag_rtol is not None
            else None
        )
        self._p_prev: np.ndarray | None = None  # pressure warm start
        self._p_prev_mesh: Mesh | None = None

    @classmethod
    def resume_from(
        cls, path: str, config: RheaConfig | None = None,
        include_solver_state: bool = True,
    ) -> "MantleConvection":
        """Rebuild a run from a checkpoint directory (or a root of them);
        see :func:`repro.checkpoint.restore_convection`.  ``config`` must
        match the run that saved the checkpoint."""
        from ..checkpoint import restore_convection

        return restore_convection(
            path, config=config, include_solver_state=include_solver_state
        )

    # -- initial adaptation -----------------------------------------------------

    def adapt_initial(self, rounds: int = 3, target: int | None = None) -> None:
        """Pre-adapt the mesh to the initial temperature before stepping
        (mirrors NEWTREE at a coarse level + refinement to the data)."""
        for _ in range(rounds):
            self.adapt(target=target)
            Tn = self._t_init(self.mesh.node_coords())
            self.T = self.mesh.expand(Tn[self.mesh.indep_nodes])

    # -- Stokes ---------------------------------------------------------------------

    def _body_force(self) -> np.ndarray:
        f = np.zeros((self.mesh.n_nodes, 3))
        f[:, 2] = self.config.Ra * self.T
        return f

    def _cache_ctx(self):
        """Context honoring ``config.cache_operators`` (memoization is
        value-transparent, so this only changes speed, not results)."""
        from contextlib import nullcontext

        return nullcontext() if self.config.cache_operators else cache_disabled()

    def solve_stokes(self) -> dict:
        """Picard iteration over the strain-rate-dependent viscosity.

        Each pass evaluates the viscosity law at the current velocity,
        assembles the Stokes system, and solves by MINRES with the block
        preconditioner.  Returns solver statistics.
        """
        with self._cache_ctx():
            return self._solve_stokes_impl()

    def _solve_stokes_impl(self) -> dict:
        cfg = self.config
        mesh = self.mesh
        T_e = element_temperature(mesh, self.T)
        z_e = mesh.element_centers()[:, 2] / cfg.domain[2]
        total_minres = 0
        n_picard = 0
        n = mesh.n_independent
        for k in range(max(cfg.picard_iterations, 1)):
            n_picard = k + 1
            edot = strain_rate_invariant(mesh, self.u)
            eta = cfg.viscosity(T_e, z_e, edot)
            self.eta_elem = eta
            self.edot_elem = edot
            st = StokesSystem(
                mesh, eta, self._body_force(), bc=cfg.velocity_bc,
                variant=cfg.fem_variant,
            )
            if self._prec_lag is not None:
                prec = self._prec_lag.get(st)
            elif cfg.stokes_preconditioner == "gmg":
                prec = GMGStokesPreconditioner(st)
            else:
                prec = StokesBlockPreconditioner(st)
            x0 = self._warm_start(st) if cfg.warm_start else None
            res = minres(
                st.matvec, st.rhs(), M=prec.apply, x0=x0,
                tol=cfg.stokes_tol, maxiter=cfg.stokes_maxiter,
            )
            x = st.project_pressure_mean(res.x)
            total_minres += res.iterations
            self._p_prev = x[3 * n :].copy()
            self._p_prev_mesh = mesh
            u_new = np.empty((mesh.n_nodes, 3))
            for a in range(3):
                u_new[:, a] = mesh.expand(x[a * n : (a + 1) * n])
            du = np.linalg.norm(u_new - self.u) / max(np.linalg.norm(u_new), 1e-30)
            self.u = u_new
            if du < cfg.picard_tol:
                break
        self._last_minres = total_minres
        self._last_picard = n_picard
        obs.counter("minres_iterations", total_minres)
        obs.counter("picard_iterations", n_picard)
        stats = {
            "minres_iterations": total_minres,
            "picard_iterations": n_picard,
            "eta_min": float(self.eta_elem.min()),
            "eta_max": float(self.eta_elem.max()),
            "converged": res.converged,
        }
        if self._prec_lag is not None:
            stats["prec_builds"] = self._prec_lag.n_builds
            stats["prec_reuses"] = self._prec_lag.n_reuses
        return stats

    def _warm_start(self, st: StokesSystem) -> np.ndarray | None:
        """Initial MINRES guess from the current velocity field (which
        survives mesh adaptation through the field transfer) and, on an
        unchanged mesh, the previous pressure solution."""
        mesh = self.mesh
        n = mesh.n_independent
        if not np.any(self.u):
            return None
        x0 = np.zeros(st.n_dof)
        for a in range(3):
            x0[a * n : (a + 1) * n] = self.u[mesh.indep_nodes, a]
        x0[st.bc.dofs] = 0.0
        if self._p_prev is not None and self._p_prev_mesh is mesh:
            x0[3 * n :] = self._p_prev
        return x0

    # -- temperature -------------------------------------------------------------------

    def advance_temperature(self, n_steps: int) -> float:
        """Advance the energy equation ``n_steps`` explicit steps with the
        frozen Stokes velocity; returns the time step used."""
        with self._cache_ctx():
            return self._advance_temperature_impl(n_steps)

    def _advance_temperature_impl(self, n_steps: int) -> float:
        cfg = self.config
        vel_e = element_velocity_from_nodal(self.mesh, self.u)
        eq = AdvectionDiffusion(
            self.mesh, cfg.kappa, vel_e, source=cfg.gamma,
            dirichlet=[(2, 0, 1.0), (2, 1, 0.0)],  # hot bottom, cold top
            variant=cfg.fem_variant,
        )
        dt = eq.cfl_dt(cfg.cfl)
        T_ind = self.T[self.mesh.indep_nodes]
        T_ind = eq.advance(T_ind, dt, n_steps)
        self.T = self.mesh.expand(T_ind)
        self.sim_time += n_steps * dt
        self.step_count += n_steps
        return dt

    # -- adaptation --------------------------------------------------------------------

    def adapt(self, target: int | None = None) -> "AdaptReport":
        """One Figure-4 adaptation pass driven by the combined indicator;
        transfers temperature and velocity to the new mesh."""
        cfg = self.config
        target = target or cfg.target_elements or self.mesh.n_elements
        eta_ind = combined_indicator(
            self.mesh, self.T, self.eta_elem, cfg.viscosity_weight
        )
        # stress localization: keep the high-deviatoric-stress (yielding)
        # zones at the finest resolution, as in the Sec. VI runs.  Stress
        # (2 eta edot), not strain rate, is the right localizer: the
        # low-viscosity interior strains fast at low stress.
        stress = 2.0 * self.eta_elem * self.edot_elem
        if cfg.strain_weight > 0 and stress.max() > 0:
            eta_ind = eta_ind + cfg.strain_weight * (stress / stress.max())
        # plastic yielding zones (weak plate boundaries) are refined
        # directly: yielding caps the stress at sigma_y, so neither the
        # thermal nor the stress term can single them out
        if cfg.yield_weight > 0 and hasattr(cfg.viscosity, "yielded_mask"):
            T_e = element_temperature(self.mesh, self.T)
            z_e = self.mesh.element_centers()[:, 2] / cfg.domain[2]
            yielded = cfg.viscosity.yielded_mask(T_e, z_e, self.edot_elem)
            eta_ind = eta_ind + cfg.yield_weight * yielded
        fields = {
            "T": self.T,
            "ux": self.u[:, 0],
            "uy": self.u[:, 1],
            "uz": self.u[:, 2],
        }
        new_mesh, new_fields, report = adapt_mesh(
            self.mesh, eta_ind, target, fields,
            min_level=cfg.min_level, max_level=cfg.max_level,
            tol=cfg.mark_tol, face_algorithm=cfg.face_algorithm,
        )
        self.mesh = new_mesh
        self.T = np.clip(new_fields["T"], 0.0, 1.5)
        self.u = np.stack(
            [new_fields["ux"], new_fields["uy"], new_fields["uz"]], axis=1
        )
        self.eta_elem = np.ones(new_mesh.n_elements)
        self.edot_elem = strain_rate_invariant(new_mesh, self.u)
        return report

    # -- diagnostics -------------------------------------------------------------------

    def vrms(self) -> float:
        """RMS velocity weighted by element volumes."""
        vol = self.mesh.element_sizes().prod(axis=1)
        uc = self.u[self.mesh.element_nodes].mean(axis=1)  # (ne, 3)
        v2 = np.einsum("ea,ea->e", uc, uc)
        return float(np.sqrt((vol * v2).sum() / vol.sum()))

    def nusselt(self) -> float:
        """Nusselt number: mean conductive flux through the top boundary
        divided by the purely conductive value."""
        from .error import element_gradient

        g = element_gradient(self.mesh, self.T)
        c = self.mesh.element_centers()
        sizes = self.mesh.element_sizes()
        top = c[:, 2] + sizes[:, 2] / 2 >= self.config.domain[2] * (1 - 1e-9)
        if not top.any():
            return np.nan
        area = (sizes[top, 0] * sizes[top, 1]).sum()
        flux = -(g[top, 2] * sizes[top, 0] * sizes[top, 1]).sum()
        dz = self.config.domain[2]
        return float(flux / area * dz)  # conductive flux = 1/dz

    def mean_temperature(self) -> float:
        vol = self.mesh.element_sizes().prod(axis=1)
        T_e = element_temperature(self.mesh, self.T)
        return float((vol * T_e).sum() / vol.sum())

    def cache_stats(self) -> dict:
        """Hit/miss counters of the current mesh's operator cache plus the
        lagged-preconditioner build/reuse tallies."""
        c = operator_cache(self.mesh)
        out = {"cache_hits": c.hits, "cache_misses": c.misses}
        if self._prec_lag is not None:
            out["prec_builds"] = self._prec_lag.n_builds
            out["prec_reuses"] = self._prec_lag.n_reuses
        return out

    # -- main loop ----------------------------------------------------------------------

    def run(
        self, n_cycles: int, adapt: bool = True, checkpoint=None
    ) -> list[StepDiagnostics]:
        """Run ``n_cycles`` of (adapt -> Stokes solve -> advance
        temperature ``adapt_every`` steps), recording diagnostics.

        ``checkpoint`` is a path / CheckpointConfig / Checkpointer (see
        :mod:`repro.checkpoint.driver`); snapshots land after the cycles
        they complete, so a crash loses at most the current cycle.  The
        fault-injection hook of :mod:`repro.parallel.simcomm` is polled
        mid-cycle (serial drivers count as rank 0).
        """
        from ..parallel import check_fault

        cfg = self.config
        if cfg.observe and obs.active() is None:
            obs.enable()
        ckpt = None
        if checkpoint is not None:
            from ..checkpoint import Checkpointer

            ckpt = Checkpointer.coerce(checkpoint)
        for _ in range(n_cycles):
            timings = {}
            if adapt:
                t0 = time.perf_counter()
                with obs.phase("amr"):
                    report = self.adapt()
                    obs.counter("elements_marked_refine", report.n_refined)
                    obs.counter("elements_coarsened", report.n_coarsened)
                timings["AMR"] = time.perf_counter() - t0
                timings.update(report.timings)
            check_fault(None, self.step_count)
            t0 = time.perf_counter()
            c0 = self.cache_stats()
            with obs.phase("stokes"):
                stats = self.solve_stokes()
                c1 = self.cache_stats()
                obs.counter("cache_hits", c1["cache_hits"] - c0["cache_hits"])
                obs.counter("cache_misses", c1["cache_misses"] - c0["cache_misses"])
            timings["Stokes"] = time.perf_counter() - t0
            t0 = time.perf_counter()
            with obs.phase("advection"):
                self.advance_temperature(cfg.adapt_every)
                obs.counter("advection_steps", cfg.adapt_every)
            timings["TimeIntegration"] = time.perf_counter() - t0
            self.history.append(
                StepDiagnostics(
                    step=self.step_count,
                    time=self.sim_time,
                    n_elements=self.mesh.n_elements,
                    vrms=self.vrms(),
                    nusselt=self.nusselt(),
                    mean_T=self.mean_temperature(),
                    minres_iterations=stats["minres_iterations"],
                    picard_iterations=stats["picard_iterations"],
                    eta_min=stats["eta_min"],
                    eta_max=stats["eta_max"],
                    timings=timings,
                )
            )
            if ckpt is not None and ckpt.due(len(self.history)):
                ckpt.save_convection(self)
        return self.history
