"""RHEA: the adaptive mantle convection application (Sections II, III, VI)."""

from .convection import ConfigError, MantleConvection, RheaConfig, conductive_profile
from .diagnostics import (
    depth_profile,
    depth_profiles_table,
    plateness,
    surface_mobility,
)
from .error import (
    adjoint_weighted_indicator,
    combined_indicator,
    element_gradient,
    gradient_indicator,
    viscosity_jump_indicator,
)
from .viscosity import (
    ArrheniusViscosity,
    YieldingViscosity,
    element_temperature,
    strain_rate_invariant,
)

__all__ = [
    "ConfigError",
    "MantleConvection",
    "RheaConfig",
    "conductive_profile",
    "depth_profile",
    "depth_profiles_table",
    "plateness",
    "surface_mobility",
    "gradient_indicator",
    "viscosity_jump_indicator",
    "combined_indicator",
    "adjoint_weighted_indicator",
    "element_gradient",
    "ArrheniusViscosity",
    "YieldingViscosity",
    "element_temperature",
    "strain_rate_invariant",
]
