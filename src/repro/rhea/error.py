"""Error indicators and refinement criteria for RHEA.

The production criterion is a scaled gradient indicator on temperature
(resolution follows thermal fronts, plumes and boundary layers), optionally
combined with a viscosity-variation term so that yielding zones — where
viscosity collapses over a few kilometers — are also refined (Section VI:
"the finest grid covers the region of highest stress").

An adjoint-weighted indicator (the "adjoint-based error estimators" the
paper lists among RHEA's ingredients) is provided for goal-oriented
refinement of the advection-diffusion equation: the primal residual is
weighted by the gradient of a discrete adjoint solution transported by the
reversed flow.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from ..fem import apply_dirichlet, assemble_scalar
from ..fem.hexops import ElementOps
from ..mesh import Mesh

__all__ = [
    "gradient_indicator",
    "viscosity_jump_indicator",
    "combined_indicator",
    "adjoint_weighted_indicator",
    "element_gradient",
]

_OPS = ElementOps()


def element_gradient(mesh: Mesh, f_full: np.ndarray) -> np.ndarray:
    """(ne, 3) gradient of a scalar nodal field at element centers."""
    fc = f_full[mesh.element_nodes]  # (ne, 8)
    sizes = mesh.element_sizes()
    parity = np.array([[(i >> a) & 1 for a in range(3)] for i in range(8)])
    sgn = 2.0 * parity - 1.0
    out = np.empty((mesh.n_elements, 3))
    for b in range(3):
        out[:, b] = fc @ (sgn[:, b] / 4.0) / sizes[:, b]
    return out


def gradient_indicator(mesh: Mesh, T_full: np.ndarray) -> np.ndarray:
    """``eta_e = h_e * |grad T|_e`` — the interpolation-error-style
    indicator that concentrates resolution at thermal fronts."""
    g = element_gradient(mesh, T_full)
    h = mesh.element_sizes().min(axis=1)
    return h * np.linalg.norm(g, axis=1)


def viscosity_jump_indicator(mesh: Mesh, eta_elem: np.ndarray) -> np.ndarray:
    """``h_e * |grad log10(eta)|`` approximated from element values
    interpolated to nodes; refines collapsing-viscosity (yielding) zones."""
    log_eta = np.log10(np.maximum(eta_elem, 1e-300))
    # scatter element values to nodes (average), then take element gradients
    node_sum = np.zeros(mesh.n_nodes)
    node_cnt = np.zeros(mesh.n_nodes)
    np.add.at(node_sum, mesh.element_nodes.ravel(), np.repeat(log_eta, 8))
    np.add.at(node_cnt, mesh.element_nodes.ravel(), 1.0)
    node_eta = node_sum / np.maximum(node_cnt, 1.0)
    g = element_gradient(mesh, node_eta)
    h = mesh.element_sizes().min(axis=1)
    return h * np.linalg.norm(g, axis=1)


def combined_indicator(
    mesh: Mesh,
    T_full: np.ndarray,
    eta_elem: np.ndarray | None = None,
    viscosity_weight: float = 0.5,
) -> np.ndarray:
    """Temperature-gradient indicator, optionally blended with the
    viscosity-jump term (both normalized to unit maximum first)."""
    ind = gradient_indicator(mesh, T_full)
    mx = ind.max()
    if mx > 0:
        ind = ind / mx
    if eta_elem is not None and viscosity_weight > 0:
        v = viscosity_jump_indicator(mesh, eta_elem)
        vmx = v.max()
        if vmx > 0:
            ind = ind + viscosity_weight * (v / vmx)
    return ind


def adjoint_weighted_indicator(
    mesh: Mesh,
    T_full: np.ndarray,
    vel_elem: np.ndarray,
    kappa: float,
    goal_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Goal-oriented indicator for steady advection-diffusion.

    Solves the discrete adjoint ``A^T lam = g`` (advection reversed by the
    transpose) for a goal functional ``g`` (default: mean temperature) and
    returns ``eta_e = h_e |grad T|_e * h_e |grad lam|_e`` — the standard
    dual-weighted-residual surrogate with gradient recovery.
    """
    sizes = mesh.element_sizes()
    elem = _OPS.stiffness(sizes, kappa) + _OPS.convection(sizes, vel_elem)
    A = assemble_scalar(mesh, elem)
    n = mesh.n_independent
    if goal_weights is None:
        from ..fem import lumped_mass

        goal_weights = lumped_mass(mesh, _OPS.mass(sizes))
    bdofs = mesh.dof_of_node[np.flatnonzero(mesh.boundary_node_mask())]
    bdofs = np.unique(bdofs[bdofs >= 0])
    At, g = apply_dirichlet(A.T.tocsr(), goal_weights.copy(), bdofs, 0.0)
    lam = spla.spsolve(At.tocsc(), g)
    lam_full = mesh.expand(lam)
    h = sizes.min(axis=1)
    primal = h * np.linalg.norm(element_gradient(mesh, T_full), axis=1)
    dual = h * np.linalg.norm(element_gradient(mesh, lam_full), axis=1)
    return primal * dual
