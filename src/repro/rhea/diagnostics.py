"""Geodynamic diagnostics for RHEA runs.

Depth profiles, surface mobility, and plateness — the quantities mantle
convection studies report alongside Nu and vrms, used to characterize
plate-like behavior in yielding runs (Section VI discusses coherent
plates, weak boundaries, and localized deformation; these diagnostics
quantify them).
"""

from __future__ import annotations

import numpy as np

from ..mesh import Mesh
from .viscosity import element_temperature, strain_rate_invariant

__all__ = [
    "depth_profile",
    "surface_mobility",
    "plateness",
    "depth_profiles_table",
]


def depth_profile(
    mesh: Mesh, elem_values: np.ndarray, n_bins: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Volume-weighted horizontal average of a per-element field vs depth.

    Returns ``(z_centers, averages)``; bins with no elements give NaN.
    """
    elem_values = np.asarray(elem_values, dtype=np.float64)
    if elem_values.shape != (mesh.n_elements,):
        raise ValueError("per-element field required")
    z = mesh.element_centers()[:, 2] / mesh.domain[2]
    vol = mesh.element_sizes().prod(axis=1)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(z, edges) - 1, 0, n_bins - 1)
    wsum = np.bincount(idx, weights=vol, minlength=n_bins)
    vsum = np.bincount(idx, weights=vol * elem_values, minlength=n_bins)
    with np.errstate(invalid="ignore"):
        avg = np.where(wsum > 0, vsum / np.maximum(wsum, 1e-300), np.nan)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, avg


def _surface_elements(mesh: Mesh) -> np.ndarray:
    c = mesh.element_centers()[:, 2]
    h = mesh.element_sizes()[:, 2]
    return c + h / 2 >= mesh.domain[2] * (1 - 1e-9)


def surface_mobility(mesh: Mesh, u_full: np.ndarray) -> float:
    """Surface rms speed / volume rms speed.

    Mobility ~ 1 indicates mobile-lid (plate-like) convection; << 1 a
    stagnant lid.  ``u_full`` is (n_nodes, 3).
    """
    u = np.asarray(u_full, dtype=np.float64)
    uc = u[mesh.element_nodes].mean(axis=1)  # (ne, 3)
    speed2 = np.einsum("ea,ea->e", uc, uc)
    vol = mesh.element_sizes().prod(axis=1)
    v_all = np.sqrt((vol * speed2).sum() / vol.sum())
    top = _surface_elements(mesh)
    if not top.any() or v_all == 0:
        return np.nan
    area = (mesh.element_sizes()[top, 0] * mesh.element_sizes()[top, 1]).sum()
    # horizontal speed only (normal component vanishes under free slip)
    sh2 = uc[top, 0] ** 2 + uc[top, 1] ** 2
    v_surf = np.sqrt(
        (mesh.element_sizes()[top, 0] * mesh.element_sizes()[top, 1] * sh2).sum()
        / area
    )
    return float(v_surf / v_all)


def plateness(mesh: Mesh, u_full: np.ndarray, quantile: float = 0.8) -> float:
    """Fraction of surface strain rate carried by the weakest ``1 -
    quantile`` of the surface area.

    Plate-like flow localizes deformation: a high value means most surface
    deformation happens in narrow boundaries while plate interiors ride
    rigidly (cf. the Section VI discussion of coherent blocks and weak
    zones)."""
    top = _surface_elements(mesh)
    if not top.any():
        return np.nan
    edot = strain_rate_invariant(mesh, np.asarray(u_full, dtype=np.float64))[top]
    area = (mesh.element_sizes()[top, 0] * mesh.element_sizes()[top, 1])
    order = np.argsort(edot)
    cum_area = np.cumsum(area[order]) / area.sum()
    cut = np.searchsorted(cum_area, quantile)
    total = (edot * area).sum()
    if total <= 0:
        return np.nan
    localized = (edot[order][cut:] * area[order][cut:]).sum()
    return float(localized / total)


def depth_profiles_table(sim) -> dict:
    """Convenience: T, viscosity and strain-rate depth profiles of a
    :class:`~repro.rhea.MantleConvection` state."""
    mesh = sim.mesh
    T_e = element_temperature(mesh, sim.T)
    z, Tprof = depth_profile(mesh, T_e)
    _, eprof = depth_profile(mesh, np.log10(np.maximum(sim.eta_elem, 1e-300)))
    _, sprof = depth_profile(mesh, strain_rate_invariant(mesh, sim.u))
    return {"z": z, "T": Tprof, "log10_eta": eprof, "edot": sprof}
