"""Preconditioned MINRES (Paige & Saunders 1975).

The paper solves the stabilized Stokes saddle system with MINRES: each
iteration needs one operator application, two inner products and fixed
vector storage — exactly the properties quoted in Section III.  The
preconditioner must be symmetric positive definite (the block-diagonal
``diag(Atilde, Stilde)`` of :mod:`repro.solvers.blockprec` is).

Implementation follows the original MINRES recurrence (Lanczos +
Givens rotations), tracking the preconditioned residual norm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

from .. import obs

__all__ = ["minres", "MinresResult"]


@dataclass
class MinresResult:
    """Solution and convergence history of a MINRES run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residuals: list = field(default_factory=list)  # preconditioned norms

    @property
    def final_residual(self) -> float:
        """Last recorded preconditioned residual norm (``inf`` before
        any iteration)."""
        return self.residuals[-1] if self.residuals else np.inf


def _as_op(A) -> Callable[[np.ndarray], np.ndarray]:
    if callable(A):
        return A
    if sp.issparse(A) or isinstance(A, np.ndarray):
        return lambda x: A @ x
    raise TypeError("A must be callable or a matrix")


def minres(
    A,
    b: np.ndarray,
    M: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int | None = None,
    callback: Callable[[np.ndarray], None] | None = None,
) -> MinresResult:
    """Solve the symmetric (possibly indefinite) system ``A x = b``.

    Parameters
    ----------
    A:
        Symmetric operator (sparse matrix or callable).
    M:
        SPD preconditioner *application* ``z = M(r)`` (approximates
        ``A^{-1}`` in the block-diagonal sense); identity when omitted.
    x0:
        Optional warm start.  A nonzero ``x0`` changes the convergence
        reference from the initial residual to ``||b||_M`` so a warm
        start cannot be held to a tighter absolute tolerance than a
        cold one; ``x0=None`` (or all zeros) is the classic cold start.
    tol:
        Relative tolerance on the preconditioned residual norm
        (measured against ``||b||_M``, see ``x0``).
    """
    with obs.phase("minres"):
        res = _minres_impl(A, b, M, x0, tol, maxiter, callback)
    obs.counter("minres_calls")
    obs.counter("minres_iterations", res.iterations)
    return res


def _minres_impl(A, b, M, x0, tol, maxiter, callback) -> MinresResult:
    apply_A = _as_op(A)
    apply_M = M if M is not None else (lambda r: r)
    n = len(b)
    x = np.zeros(n, dtype=np.float64) if x0 is None else np.array(x0, dtype=np.float64)
    maxiter = maxiter if maxiter is not None else 5 * n

    warm = x0 is not None and np.any(x)
    r1 = (b - apply_A(x)) if warm else b.copy()
    y = apply_M(r1)
    beta1 = float(r1 @ y)
    if beta1 < 0:
        raise ValueError("preconditioner is not positive definite")
    beta1 = np.sqrt(beta1)
    residuals = [beta1]
    # Convergence is measured against ||b||_M, not the initial residual:
    # with a warm start the initial residual is already small and a
    # residual-relative test would demand an absolutely tighter solution
    # than the cold start it is meant to accelerate.  For x0 = 0 the two
    # references coincide, so cold-start behavior is unchanged.
    if warm:
        yb = apply_M(b)
        ref = float(b @ yb)
        if ref < 0:
            raise ValueError("preconditioner is not positive definite")
        ref = np.sqrt(ref)
    else:
        ref = beta1
    if beta1 <= tol * ref:
        return MinresResult(x=x, iterations=0, converged=True, residuals=residuals)

    oldb = 0.0
    beta = beta1
    dbar = 0.0
    epsln = 0.0
    phibar = beta1
    cs = -1.0
    sn = 0.0
    w = np.zeros(n, dtype=np.float64)
    w2 = np.zeros(n, dtype=np.float64)
    r2 = r1

    converged = False
    itn = 0
    for itn in range(1, maxiter + 1):
        s = 1.0 / beta
        v = s * y
        y = apply_A(v)
        if itn >= 2:
            y = y - (beta / oldb) * r1
        alfa = float(v @ y)
        y = y - (alfa / beta) * r2
        r1 = r2
        r2 = y
        y = apply_M(r2)
        oldb = beta
        beta = float(r2 @ y)
        if beta < 0:
            raise ValueError("preconditioner is not positive definite")
        beta = np.sqrt(beta)

        # apply previous and compute next Givens rotation
        oldeps = epsln
        delta = cs * dbar + sn * alfa
        gbar = sn * dbar - cs * alfa
        epsln = sn * beta
        dbar = -cs * beta
        gamma = np.sqrt(gbar * gbar + beta * beta)
        gamma = max(gamma, np.finfo(float).eps)
        cs = gbar / gamma
        sn = beta / gamma
        phi = cs * phibar
        phibar = sn * phibar

        # update the solution
        w1 = w2
        w2 = w
        w = (v - oldeps * w1 - delta * w2) / gamma
        x = x + phi * w

        residuals.append(abs(phibar))
        if callback is not None:
            callback(x)
        if abs(phibar) <= tol * ref:
            converged = True
            break

    return MinresResult(x=x, iterations=itn, converged=converged, residuals=residuals)
