"""The block-diagonal Stokes preconditioner of Section III.

    P = diag(Atilde, Stilde)

``Atilde``: for each velocity component, one multigrid V-cycle on the
scalar variable-viscosity Poisson operator (the vector-Laplacian
approximation of the viscous block) — either algebraic
(:class:`StokesBlockPreconditioner`, the paper's BoomerAMG analogue) or
matrix-free geometric on the forest hierarchy
(:class:`repro.solvers.gmg.GMGStokesPreconditioner`).  ``Stilde``: the
inverse of the inverse-viscosity-weighted lumped pressure mass
(diagonal, spectrally equivalent to the Schur complement
``B A^{-1} B^T + C``).

Either application is SPD, captures both the element-size and the
viscosity variation, and keeps the MINRES iteration count essentially
independent of problem size — the Figure-2 result.  Setup amortization
across Picard passes and time steps (the paper's reuse of one AMG setup
between mesh adaptations) is handled by
:class:`LaggedStokesPreconditioner`, which wraps either kind.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from .. import obs
from .amg import SmoothedAggregationAMG
from .gmg import GMGStokesPreconditioner

if TYPE_CHECKING:  # import is type-only: fem.stokes imports solvers-adjacent
    # modules through mangll, and a runtime import here would close that
    # cycle during package initialization
    from ..fem.stokes import StokesSystem

__all__ = ["StokesBlockPreconditioner", "LaggedStokesPreconditioner"]


class StokesBlockPreconditioner:
    """Builds the AMG hierarchies (setup phase) and applies P^{-1}.

    Setup cost is reported separately from application cost because the
    paper reuses one AMG setup across the ~16 time steps between mesh
    adaptations (Figures 8-9).
    """

    def __init__(self, stokes: StokesSystem, theta: float = 0.08, **amg_opts):
        self.stokes = stokes
        self.n = stokes.mesh.n_independent
        with obs.phase("prec_setup"):
            self.amg = [
                SmoothedAggregationAMG(K, theta=theta, **amg_opts)
                for K in stokes.poisson_blocks()
            ]
            self.schur_diag = stokes.schur_diagonal()
        if np.any(self.schur_diag <= 0):
            raise AssertionError("Schur diagonal must be positive")
        self.n_vcycles = 0

    def apply(self, r: np.ndarray) -> np.ndarray:
        """z = P^{-1} r: three scalar V-cycles plus a diagonal scaling."""
        n = self.n
        z = np.empty_like(r)
        for a in range(3):
            z[a * n : (a + 1) * n] = self.amg[a].vcycle(r[a * n : (a + 1) * n])
            self.n_vcycles += 1
        z[3 * n :] = r[3 * n :] / self.schur_diag
        return z

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    def refresh_schur(self, stokes: StokesSystem) -> None:
        """Rebind to a (re-assembled) system, refreshing only the cheap
        diagonal Schur approximation.  The AMG hierarchies are kept: they
        remain SPD and spectrally equivalent as long as the viscosity has
        not drifted far (the lagged-preconditioner premise)."""
        self.stokes = stokes
        self.schur_diag = stokes.schur_diagonal()
        if np.any(self.schur_diag <= 0):
            raise AssertionError("Schur diagonal must be positive")

    @property
    def operator_complexity(self) -> float:
        """Mean AMG operator complexity (total nnz over all levels /
        fine nnz) across the three component hierarchies."""
        return float(np.mean([a.operator_complexity for a in self.amg]))


class LaggedStokesPreconditioner:
    """Setup-amortizing wrapper around either multigrid block
    preconditioner (``kind="amg"`` — :class:`StokesBlockPreconditioner` —
    or ``kind="gmg"`` —
    :class:`repro.solvers.gmg.GMGStokesPreconditioner`).

    The paper reuses one AMG setup across the ~16 time steps between mesh
    adaptations (Figures 8-9); this wrapper implements that policy for the
    Picard/timestep loop: the hierarchy is rebuilt only when

    - the mesh object changed (adaptation produces a new mesh), or
    - the element-viscosity field drifted beyond ``rtol`` in relative
      max-norm since the hierarchy was last built.

    The diagonal Schur block is refreshed on every call (it is cheap and
    viscosity-dependent), so only the expensive hierarchy setup is
    lagged.  ``rtol = 0`` reuses the hierarchy only for a
    bitwise-unchanged viscosity, which leaves solver results bitwise
    identical to rebuild-every-pass.  A GMG rebuild is cheap either way —
    the mesh-derived structure is cached per mesh, so rebuilding on the
    same mesh only re-weights coefficients — but lagging still skips the
    smoother-bound re-estimates and coarse factorizations.
    """

    def __init__(
        self, rtol: float = 0.5, theta: float = 0.08, kind: str = "amg", **prec_opts
    ):
        if kind not in ("amg", "gmg"):
            raise ValueError(f"kind must be 'amg' or 'gmg', got {kind!r}")
        self.rtol = float(rtol)
        self.theta = theta
        self.kind = kind
        self.prec_opts = prec_opts
        self._prec: StokesBlockPreconditioner | GMGStokesPreconditioner | None = None
        self._mesh = None
        self._bc_kind = None
        self._eta_ref: np.ndarray | None = None
        #: fingerprint of the lagged state (multigrid hierarchy + eta
        #: reference), taken at build under REPRO_SANITIZE=1 and verified
        #: before every reuse — in-place mutation of the memoized
        #: hierarchy would silently break the lagging premise
        self._frozen_token: str | None = None
        self.n_builds = 0
        self.n_reuses = 0

    def _frozen_state(self) -> list:
        assert self._prec is not None
        if self.kind == "gmg":
            return self._prec.frozen_state() + [self._eta_ref]
        return [
            [[lvl.A, lvl.P, lvl.L, lvl.U] for lvl in amg.levels]
            for amg in self._prec.amg
        ] + [self._eta_ref]

    def drift(self, eta: np.ndarray) -> float:
        """Relative max-norm viscosity drift since the last AMG build."""
        if self._eta_ref is None or eta.shape != self._eta_ref.shape:
            return np.inf
        return float(np.max(np.abs(eta - self._eta_ref) / self._eta_ref))

    def get(
        self, stokes: StokesSystem
    ) -> StokesBlockPreconditioner | GMGStokesPreconditioner:
        """The preconditioner for ``stokes``, reusing the multigrid setup
        when the mesh is unchanged and the viscosity drift is within
        ``rtol``."""
        eta = stokes.viscosity
        reusable = (
            self._prec is not None
            and self._mesh is stokes.mesh
            and self._bc_kind == stokes.bc_kind
            and self.drift(eta) <= self.rtol
        )
        if reusable:
            self.n_reuses += 1
            obs.counter("prec_reuses")
            if self._frozen_token is not None:
                from ..analysis.sanitize import maybe_verify

                maybe_verify(
                    self._frozen_state(),
                    self._frozen_token,
                    context=f"LaggedStokesPreconditioner {self.kind.upper()} hierarchy",
                )
            self._prec.refresh_schur(stokes)
        else:
            self.n_builds += 1
            obs.counter("prec_builds")
            if self.kind == "gmg":
                self._prec = GMGStokesPreconditioner(stokes, **self.prec_opts)
            else:
                self._prec = StokesBlockPreconditioner(
                    stokes, theta=self.theta, **self.prec_opts
                )
            self._mesh = stokes.mesh
            self._bc_kind = stokes.bc_kind
            self._eta_ref = eta.copy()
            from ..analysis.sanitize import maybe_freeze

            self._frozen_token = maybe_freeze(self._frozen_state())
        return self._prec

    def invalidate(self) -> None:
        """Drop the lagged hierarchy so the next :meth:`get` rebuilds
        (checkpoint restore and tests use this to force a cold start)."""
        self._prec = None
        self._mesh = None
        self._eta_ref = None
        self._frozen_token = None
