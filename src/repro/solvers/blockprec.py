"""The block-diagonal Stokes preconditioner of Section III.

    P = diag(Atilde, Stilde)

``Atilde``: for each velocity component, one AMG V-cycle on the scalar
variable-viscosity Poisson operator (the vector-Laplacian approximation of
the viscous block).  ``Stilde``: the inverse of the inverse-viscosity-
weighted lumped pressure mass (diagonal, spectrally equivalent to the
Schur complement ``B A^{-1} B^T + C``).

The application is SPD, captures both the element-size and the viscosity
variation, and keeps the MINRES iteration count essentially independent of
problem size — the Figure-2 result.
"""

from __future__ import annotations

import numpy as np

from ..fem.stokes import StokesSystem
from .amg import SmoothedAggregationAMG

__all__ = ["StokesBlockPreconditioner"]


class StokesBlockPreconditioner:
    """Builds the AMG hierarchies (setup phase) and applies P^{-1}.

    Setup cost is reported separately from application cost because the
    paper reuses one AMG setup across the ~16 time steps between mesh
    adaptations (Figures 8-9).
    """

    def __init__(self, stokes: StokesSystem, theta: float = 0.08, **amg_opts):
        self.stokes = stokes
        self.n = stokes.mesh.n_independent
        self.amg = [
            SmoothedAggregationAMG(K, theta=theta, **amg_opts)
            for K in stokes.poisson_blocks()
        ]
        self.schur_diag = stokes.schur_diagonal()
        if np.any(self.schur_diag <= 0):
            raise AssertionError("Schur diagonal must be positive")
        self.n_vcycles = 0

    def apply(self, r: np.ndarray) -> np.ndarray:
        """z = P^{-1} r: three scalar V-cycles plus a diagonal scaling."""
        n = self.n
        z = np.empty_like(r)
        for a in range(3):
            z[a * n : (a + 1) * n] = self.amg[a].vcycle(r[a * n : (a + 1) * n])
            self.n_vcycles += 1
        z[3 * n :] = r[3 * n :] / self.schur_diag
        return z

    def __call__(self, r: np.ndarray) -> np.ndarray:
        return self.apply(r)

    @property
    def operator_complexity(self) -> float:
        return float(np.mean([a.operator_complexity for a in self.amg]))
