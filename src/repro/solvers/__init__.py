"""Linear and time-stepping solvers: MINRES, smoothed-aggregation AMG,
the block-diagonal Stokes preconditioner, and explicit integrators."""

from .amg import (
    AMGLevel,
    SmoothedAggregationAMG,
    aggregate,
    aggregate_reference,
    legacy_aggregation,
    legacy_smoother,
    strength_graph,
)
from .blockprec import LaggedStokesPreconditioner, StokesBlockPreconditioner
from .cg import CGResult, cg
from .minres import MinresResult, minres
from .timestep import LowStorageRK45, heun_step

__all__ = [
    "SmoothedAggregationAMG",
    "AMGLevel",
    "aggregate",
    "aggregate_reference",
    "legacy_aggregation",
    "legacy_smoother",
    "strength_graph",
    "StokesBlockPreconditioner",
    "LaggedStokesPreconditioner",
    "cg",
    "CGResult",
    "minres",
    "MinresResult",
    "LowStorageRK45",
    "heun_step",
]
