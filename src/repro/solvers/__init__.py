"""Linear and time-stepping solvers: MINRES, smoothed-aggregation AMG,
matrix-free geometric multigrid on the forest hierarchy, the
block-diagonal Stokes preconditioners, and explicit integrators.

See SOLVERS.md at the repository root for the full Stokes solve path
(MINRES -> block preconditioner -> AMG vs GMG), the lagging and
warm-start policies, and the tuning cookbook.
"""

from .amg import (
    AMGLevel,
    SmoothedAggregationAMG,
    aggregate,
    aggregate_reference,
    legacy_aggregation,
    legacy_smoother,
    strength_graph,
)
from .blockprec import LaggedStokesPreconditioner, StokesBlockPreconditioner
from .cg import CGResult, cg
from .gmg import (
    ChebyshevSmoother,
    GeometricMultigrid,
    GMGStokesPreconditioner,
    GridHierarchy,
    MatFreeScalarPoisson,
    coarse_viscosities,
    mesh_hierarchy,
    prolongation,
)
from .minres import MinresResult, minres
from .timestep import LowStorageRK45, heun_step

__all__ = [
    "SmoothedAggregationAMG",
    "AMGLevel",
    "aggregate",
    "aggregate_reference",
    "legacy_aggregation",
    "legacy_smoother",
    "strength_graph",
    "StokesBlockPreconditioner",
    "LaggedStokesPreconditioner",
    "GMGStokesPreconditioner",
    "GeometricMultigrid",
    "GridHierarchy",
    "MatFreeScalarPoisson",
    "ChebyshevSmoother",
    "mesh_hierarchy",
    "coarse_viscosities",
    "prolongation",
    "cg",
    "CGResult",
    "minres",
    "MinresResult",
    "LowStorageRK45",
    "heun_step",
]
