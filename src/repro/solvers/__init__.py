"""Linear and time-stepping solvers: MINRES, smoothed-aggregation AMG,
the block-diagonal Stokes preconditioner, and explicit integrators."""

from .amg import AMGLevel, SmoothedAggregationAMG, aggregate, strength_graph
from .blockprec import StokesBlockPreconditioner
from .cg import CGResult, cg
from .minres import MinresResult, minres
from .timestep import LowStorageRK45, heun_step

__all__ = [
    "SmoothedAggregationAMG",
    "AMGLevel",
    "aggregate",
    "strength_graph",
    "StokesBlockPreconditioner",
    "cg",
    "CGResult",
    "minres",
    "MinresResult",
    "LowStorageRK45",
    "heun_step",
]
