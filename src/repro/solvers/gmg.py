"""Matrix-free geometric multigrid on the forest refinement hierarchy.

The AMG path (:mod:`repro.solvers.amg`) preconditions each velocity
component with an algebraic V-cycle, which forces *sparse assembly* of
the scalar Poisson blocks — the last assembly dependence left after the
tensor apply engine (:mod:`repro.fem.matfree`) made the operator itself
matrix-free, and the dominant cold-setup cost under AMR.  This module
removes it: the octree the mesh was extracted from *is* a grid
hierarchy, so coarse levels come from coarsening the forest itself
(complete 8-sibling families, re-balanced 2:1), restriction and
prolongation are exact trilinear embeddings between the nested FE
spaces, smoothing is Chebyshev built from the exact matrix-free operator
diagonal, and only the coarsest level (a few dozen dofs) keeps a dense
solve — itself built by applying the matrix-free operator to the
identity.  No sparse operator is assembled at any level.

Grounding: Clevenger & Heister's AMG-vs-matrix-free-GMG comparison on
adaptive variable-viscosity Stokes, and Burkhart et al.'s matrix-free
high-contrast Stokes (PAPERS.md).  Design notes in DESIGN.md section 4i;
usage and tuning in SOLVERS.md.

Key facts the construction relies on:

- ``LinearOctree.coarsen`` only replaces *complete* marked sibling
  families by their parent, and 2:1 re-balance of a coarsened tree never
  refines past the original, so every coarse leaf is an ancestor-or-self
  of fine leaves: the coarse FE space is a *subspace* of the fine one
  and the trilinear interpolation operator ``P`` is an exact embedding.
- Independent (non-hanging) nodes of the coarse mesh are independent
  nodes of the fine mesh, so ``P`` restricted to coincident nodes is the
  identity (the round-trip invariant pinned by the tests).
- The constrained operator diagonal ``diag(D Z^T K Z D + (I - D))`` has
  a closed per-element form: grouping the gather entries by (element,
  dof) yields dense 8-vectors ``z`` with contribution
  ``sum_b c_b z^T K_b z``, where ``K_b = G8[b]^T G8[b]`` is
  viscosity-independent — so the structure is cached per mesh and a
  Picard viscosity update re-weights it in O(ne).

All mesh-derived structure (hierarchy, gathers, transfers, diagonal
factors) lives in :func:`repro.mesh.opcache.operator_cache`, giving the
same structural invalidation under AMR and the same ``REPRO_SANITIZE=1``
freeze/verify guards as the rest of the operator stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from .. import obs
from ..mesh.opcache import operator_cache
from ..octree import ROOT_LEN, balance

if TYPE_CHECKING:  # type-only: repro.fem imports this package through mangll
    from ..fem.stokes import StokesSystem
    from ..mesh import Mesh

__all__ = [
    "GridHierarchy",
    "mesh_hierarchy",
    "coarse_viscosities",
    "prolongation",
    "component_bc_dofs",
    "MatFreeScalarPoisson",
    "ChebyshevSmoother",
    "GMGLevel",
    "GeometricMultigrid",
    "GMGStokesPreconditioner",
]


def _matfree():
    """The :mod:`repro.fem.matfree` module, imported lazily.

    ``repro.fem`` reaches this package through ``mangll.dg`` during
    initialization, so a module-level import here would close an import
    cycle; deferring to first use (always after both packages finished
    importing) breaks it.
    """
    from ..fem import matfree

    return matfree


# -- forest-derived grid hierarchy ----------------------------------------------


@dataclass
class GridHierarchy:
    """The nested mesh levels of one fine mesh.

    ``meshes[0]`` is the fine mesh; each following entry is extracted
    from the 2:1 re-balanced full coarsening of the previous tree.
    ``elem_maps[l][f]`` is the index of the level ``l+1`` element that
    contains fine element ``f`` of level ``l`` (every fine element lies
    in exactly one coarse element — the nestedness invariant).
    """

    meshes: list
    elem_maps: list


def mesh_hierarchy(mesh: Mesh, max_coarse: int = 80, max_levels: int = 20) -> GridHierarchy:
    """Build (or fetch from the mesh's operator cache) the coarsening
    hierarchy of ``mesh``.

    Levels are derived by marking *every* leaf for coarsening — only
    complete sibling families actually coarsen — then re-balancing 2:1
    (corner connectivity, matching the fine mesh invariant) and
    re-extracting.  Stops when the independent-dof count drops to
    ``max_coarse``, the tree stops shrinking, or ``max_levels`` is hit.
    Requires ``mesh.tree`` (distributed submeshes carry no tree).
    """
    if mesh.tree is None:
        raise ValueError(
            "geometric multigrid needs mesh.tree (the extraction octree); "
            "distributed submeshes are not supported"
        )

    def build():
        from ..mesh import extract_mesh

        meshes = [mesh]
        elem_maps = []
        while meshes[-1].n_independent > max_coarse and len(meshes) < max_levels:
            fine = meshes[-1]
            tree = fine.tree
            tree_c, n_fam = tree.coarsen(np.ones(len(tree), dtype=bool))
            if n_fam == 0:
                break
            tree_c = balance(tree_c, "corner").tree
            if len(tree_c) >= len(tree):
                break  # balance refined everything back: no progress
            mesh_c = extract_mesh(tree_c, fine.domain)
            lv = fine.leaves
            half = lv.lengths() // 2
            emap = tree_c.find_containing(lv.x + half, lv.y + half, lv.z + half)
            meshes.append(mesh_c)
            elem_maps.append(emap.astype(np.int64))
        return GridHierarchy(meshes=meshes, elem_maps=elem_maps)

    return operator_cache(mesh).get(("gmg_hierarchy", max_coarse, max_levels), build)


def coarse_viscosities(hier: GridHierarchy, eta: np.ndarray) -> list:
    """Per-level element viscosities: the volume-weighted arithmetic mean
    of the children, chained level by level (a constant field stays
    exactly constant on every level)."""
    etas = [np.asarray(eta, dtype=np.float64)]
    for level, emap in enumerate(hier.elem_maps):  # lint: allow-loop (level count)
        mesh_f = hier.meshes[level]
        nc = hier.meshes[level + 1].n_elements
        vol = mesh_f.element_sizes().prod(axis=1)
        den = np.bincount(emap, weights=vol, minlength=nc)
        if np.any(den <= 0):
            raise AssertionError("coarse element with no fine children")
        num = np.bincount(emap, weights=vol * etas[-1], minlength=nc)
        etas.append(num / den)
    return etas


# -- inter-grid transfer --------------------------------------------------------


def prolongation(mesh_f: Mesh, mesh_c: Mesh) -> sp.csr_matrix:
    """Unmasked prolongation ``(n_fine_indep, n_coarse_indep)``: evaluate
    the coarse FE basis (hanging-node constraints folded in through
    ``Z_c``) at the fine independent node positions.

    Because the coarse space is nested in the fine space this is the
    exact subspace embedding, and its transpose is the (Galerkin-
    consistent) restriction.  Cached on the fine mesh.
    """

    def build():
        coords = mesh_f.node_coords_int[mesh_f.indep_nodes]
        nf = coords.shape[0]
        # nodes on the +max domain faces lie on the boundary of the last
        # octant; clamp the containment query into the root box
        q = np.minimum(coords, ROOT_LEN - 1)
        eidx = mesh_c.tree.find_containing(q[:, 0], q[:, 1], q[:, 2])
        lv = mesh_c.tree.leaves
        anchors = np.stack([lv.x, lv.y, lv.z], axis=1).astype(np.int64)[eidx]
        h = lv.lengths().astype(np.float64)[eidx]
        # loc components are dyadic rationals (integer coords, power-of-2
        # h), so the trilinear weights are exact and deterministic
        loc = (coords - anchors) / h[:, None]
        wab = np.stack([1.0 - loc, loc])  # (2, nf, 3)
        W = np.empty((nf, 8), dtype=np.float64)
        for i in range(8):  # lint: allow-loop (8 corners)
            W[:, i] = wab[i & 1, :, 0] * wab[(i >> 1) & 1, :, 1] * wab[(i >> 2) & 1, :, 2]
        rows = np.repeat(np.arange(nf, dtype=np.int64), 8)
        cols = mesh_c.element_nodes[eidx].ravel()
        E = sp.csr_matrix((W.ravel(), (rows, cols)), shape=(nf, mesh_c.n_nodes))
        P = sp.csr_matrix(E @ mesh_c.Z)
        P.eliminate_zeros()
        P.sort_indices()
        return P

    return operator_cache(mesh_f).get("gmg_prolong", build)


def component_bc_dofs(mesh: Mesh, bc_kind: str, axis: int) -> np.ndarray:
    """Dirichlet-constrained scalar dofs of velocity component ``axis``
    (same rule as ``StokesSystem``: free-slip pins the normal component
    on its two faces, no-slip pins everything on the whole boundary)."""
    if bc_kind == "free_slip":
        nodes = mesh.boundary_node_mask(axis=axis, side=0) | mesh.boundary_node_mask(
            axis=axis, side=1
        )
    elif bc_kind == "no_slip":
        nodes = mesh.boundary_node_mask()
    else:
        raise ValueError(f"unknown bc {bc_kind!r}")
    dofs = mesh.dof_of_node[np.flatnonzero(nodes)]
    return np.unique(dofs[dofs >= 0])


# -- matrix-free scalar Poisson level operator ----------------------------------


class MatFreeScalarPoisson:
    """Sum-factorized apply of one Dirichlet-masked variable-viscosity
    scalar Poisson block ``D Z^T K(eta) Z D + (I - D)`` — the per-level,
    per-component smoothing operator of the GMG hierarchy.

    Equivalent (to rounding) to
    ``apply_dirichlet(assemble_scalar(stiffness(eta)), bc_dofs)`` but
    never assembles: the element kernel is the reduced-grid gradient
    chain of :mod:`repro.fem.matfree` behind the constraint-folding
    gather, the Dirichlet mask ``D`` is applied as vector operations
    around the unconstrained apply, and identity rows are restored
    explicitly.  Because the mask stays outside, the gather and the
    diagonal structure are component-independent — cached once per mesh
    and shared by all three velocity components (a 3x setup saving).
    A viscosity update only re-weights per-element coefficients.
    """

    def __init__(self, mesh: Mesh, viscosity: np.ndarray, bc_dofs: np.ndarray):
        mf = _matfree()
        self.mesh = mesh
        self.n = mesh.n_independent
        cache = operator_cache(mesh)

        def build_gather():
            G = sp.csr_matrix(mesh.Z[mesh.element_nodes.T.ravel()])
            G.eliminate_zeros()
            return mf._Gather(G, np.ones(self.n, dtype=np.float64))

        self.g = cache.get("gmg_gather", build_gather)
        self.mask = np.ones(self.n, dtype=np.float64)
        self.mask[bc_dofs] = 0.0
        self.imask = 1.0 - self.mask
        w, ih, _ = mf._geometry(mesh)
        self._w = w
        self._ihT = np.ascontiguousarray(ih.T)  # (3, ne)
        self.update_viscosity(viscosity)

    def update_viscosity(self, viscosity: np.ndarray) -> None:
        """Rebind the per-element coefficients ``c_b = w eta / h_b^2``
        (all a Picard viscosity update costs at any level)."""
        eta = np.asarray(viscosity, dtype=np.float64)
        if eta.shape != (self.mesh.n_elements,):
            raise ValueError("viscosity must be per-element")
        self.cb = (self._w * eta)[None, :] * self._ihT**2  # (3, ne)
        self._diag = None

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``(D Z^T K Z D + I - D) x`` for ``x`` of shape ``(n,)`` or
        ``(n, k)`` (multi-column applies build the coarse dense solve)."""
        mf = _matfree()
        ne = self.mesh.n_elements
        k = 1 if x.ndim == 1 else x.shape[1]
        xm = self.mask * x if x.ndim == 1 else self.mask[:, None] * x
        # rows of G are i*ne + e, so (8 ne, k) -> (8, ne k) is a free
        # reshape onto the merged element-column axis m = e*k + j
        Xe = (self.g.G @ xm).reshape(8, ne * k)
        cb = self.cb if k == 1 else np.repeat(self.cb, k, axis=1)
        gs = mf._FWD_RED_T @ Xe  # (12, m): reduced-grid reference gradients
        gs.reshape(3, 4, -1)[...] *= cb[:, None, :]
        out_e = mf._BWD_RED_T @ gs  # (8, m)
        if x.ndim == 1:
            out = self.mask * (self.g.GT @ out_e.ravel())
            out += self.imask * x
        else:
            out = self.mask[:, None] * (self.g.GT @ out_e.reshape(8 * ne, k))
            out += self.imask[:, None] * x
        return out

    def _diag_structure(self):
        """Viscosity- and component-independent diagonal factors, cached
        per mesh: gather entries grouped by (element, dof) give dense
        8-vectors ``z_g``; ``t[b, g] = z_g^T K_b z_g`` with
        ``K_b = G8[b]^T G8[b]``."""
        mf = _matfree()

        def build():
            coo = self.g.G.tocoo()
            ne = self.mesh.n_elements
            i = coo.row // ne
            e = coo.row % ne
            key = e.astype(np.int64) * self.n + coo.col.astype(np.int64)
            uk, gid = np.unique(key, return_inverse=True)
            Zd = np.zeros((len(uk), 8), dtype=np.float64)
            Zd[gid, i] = coo.data
            ge = (uk // self.n).astype(np.int64)
            gd = (uk % self.n).astype(np.int64)
            Kb = np.stack([mf.G8[b].T @ mf.G8[b] for b in range(3)])
            t = np.stack(
                [((Zd @ Kb[b]) * Zd).sum(axis=1) for b in range(3)]
            )
            return ge, gd, t

        return operator_cache(self.mesh).get("gmg_diag_struct", build)

    def diagonal(self) -> np.ndarray:
        """The exact diagonal of the constrained masked operator
        (1 on Dirichlet rows), assembled from the cached structure —
        no sparse matrix at any point."""
        if self._diag is None:
            ge, gd, t = self._diag_structure()
            wsum = (self.cb[:, ge] * t).sum(axis=0)
            d = np.bincount(gd, weights=wsum, minlength=self.n)
            d = self.mask * d + self.imask  # identity rows of the mask
            if np.any(d <= 0):
                raise AssertionError("non-positive operator diagonal")
            self._diag = d
        return self._diag


# -- Chebyshev smoother ---------------------------------------------------------


class ChebyshevSmoother:
    """Degree-``degree`` Chebyshev smoother on the Jacobi-preconditioned
    operator ``D^{-1} A``, targeting the upper spectrum
    ``[lmax/lmin_ratio, lmax]``.

    As an operator the zero-initial-guess application is a polynomial
    ``p(D^{-1}A) D^{-1}`` — symmetric w.r.t. the Euclidean inner product
    because ``D`` and ``A`` are — which is what makes the V-cycle below a
    valid SPD MINRES preconditioner block.  ``lmax`` is a deterministic
    power-iteration estimate inflated by ``lmax_scale`` (the standard
    safety margin against underestimation).
    """

    def __init__(
        self,
        op: MatFreeScalarPoisson,
        degree: int = 3,
        lmax_scale: float = 1.1,
        lmin_ratio: float = 8.0,
        power_iters: int = 12,
        seed: int = 0,
    ):
        self.op = op
        self.degree = int(degree)
        self.lmax_scale = float(lmax_scale)
        self.lmin_ratio = float(lmin_ratio)
        self.dinv = 1.0 / op.diagonal()
        lam = self._estimate_lmax(power_iters, seed)
        self.lmax = lmax_scale * lam
        self.lmin = self.lmax / lmin_ratio

    def _estimate_lmax(self, iters: int, seed: int) -> float:
        """Power iteration on ``D^{-1} A`` (fixed seed: deterministic)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(self.op.n)
        x /= np.linalg.norm(x)
        lam = 1.0
        for _ in range(iters):  # lint: allow-loop (power iteration)
            y = self.dinv * self.op.apply(x)
            ny = np.linalg.norm(y)
            if ny == 0:
                return 1.0
            lam = ny
            x = y / ny
        return float(lam)

    def apply(self, b: np.ndarray) -> np.ndarray:
        """One zero-initial-guess smoothing application ``x = S b``
        (the three-term Chebyshev recurrence, ``degree`` operator
        applies)."""
        theta = 0.5 * (self.lmax + self.lmin)
        delta = 0.5 * (self.lmax - self.lmin)
        sigma = theta / delta
        rho_old = 1.0 / sigma
        d = (self.dinv * b) / theta
        x = d
        r = b
        for _ in range(self.degree - 1):  # lint: allow-loop (poly degree)
            r = r - self.op.apply(d)
            rho = 1.0 / (2.0 * sigma - rho_old)
            d = (rho * rho_old) * d + (2.0 * rho / delta) * (self.dinv * r)
            x = x + d
            rho_old = rho
        return x


# -- V-cycle --------------------------------------------------------------------


@dataclass
class GMGLevel:
    """One grid level of a component hierarchy: the matrix-free operator,
    its Chebyshev smoother (``None`` on the coarsest level), and the
    Dirichlet-masked prolongation from this level up to the next finer
    one (``None`` on the finest level)."""

    op: MatFreeScalarPoisson
    smoother: ChebyshevSmoother | None
    P: sp.csr_matrix | None


class GeometricMultigrid:
    """Matrix-free V-cycle over one component's :class:`GMGLevel` stack.

    Cycle structure (pre-smooth, coarse-grid correction, post-smooth with
    the same symmetric smoother ``S``) makes one zero-initial-guess cycle
    the operator ``2S - SAS + (I - SA) C (I - AS)`` — symmetric, and
    positive definite while the smoothed spectrum stays below 2 (the
    Chebyshev safety margin guarantees it) — so it is usable directly as
    a MINRES preconditioner block, like one AMG V-cycle.
    """

    def __init__(self, levels: list):
        self.levels = levels
        nc = levels[-1].op.n
        # dense coarsest solve, built matrix-free by applying the coarse
        # operator to the identity (pinv tolerates semi-definiteness)
        Ac = levels[-1].op.apply(np.eye(nc, dtype=np.float64))
        Ac = 0.5 * (Ac + Ac.T)
        self._coarse_inv = np.linalg.pinv(Ac, hermitian=True)

    @property
    def n_levels(self) -> int:
        """Number of grid levels (including the dense coarsest one)."""
        return len(self.levels)

    def grid_sizes(self) -> list:
        """Independent-dof count per level, finest first."""
        return [lvl.op.n for lvl in self.levels]

    @property
    def operator_complexity(self) -> float:
        """Total dofs over all levels / fine dofs — the grid-complexity
        analogue of AMG's nnz-based operator complexity (there is no nnz
        to count: nothing is assembled)."""
        fine = self.levels[0].op.n
        return sum(lvl.op.n for lvl in self.levels) / max(fine, 1)

    def _cycle(self, k: int, b: np.ndarray) -> np.ndarray:
        if k == len(self.levels) - 1:
            return self._coarse_inv @ b
        lvl = self.levels[k]
        with obs.phase(f"stokes/gmg/level{k}"):
            x = lvl.smoother.apply(b)
            r = b - lvl.op.apply(x)
        P = self.levels[k + 1].P
        xc = self._cycle(k + 1, P.T @ r)
        with obs.phase(f"stokes/gmg/level{k}"):
            x = x + P @ xc
            x = x + lvl.smoother.apply(b - lvl.op.apply(x))
        return x

    def vcycle(self, b: np.ndarray) -> np.ndarray:
        """One V-cycle with zero initial guess: an SPD approximation of
        ``A^{-1}`` suitable as a MINRES preconditioner block."""
        obs.counter("gmg_vcycles")
        return self._cycle(0, b)


# -- the Stokes block preconditioner --------------------------------------------


class GMGStokesPreconditioner:
    """Drop-in alternative to
    :class:`repro.solvers.blockprec.StokesBlockPreconditioner`:
    ``P = diag(Atilde, Stilde)`` with ``Atilde`` applied as one geometric
    multigrid V-cycle per velocity component instead of one AMG V-cycle —
    zero sparse assembly at any level.

    Setup derives the grid hierarchy from the mesh's own octree
    (:func:`mesh_hierarchy`, cached per mesh so an unchanged mesh pays
    only the per-viscosity re-weighting), averages the element viscosity
    onto each level, and builds per-component Dirichlet-masked operators,
    Chebyshev smoothers and transfers.  ``Stilde`` is the same
    inverse-viscosity-weighted lumped pressure mass as the AMG path
    (computed matrix-free in tensor mode).
    """

    def __init__(
        self,
        stokes: StokesSystem,
        degree: int = 3,
        max_coarse: int = 80,
        lmax_scale: float = 1.1,
        lmin_ratio: float = 8.0,
    ):
        self.stokes = stokes
        mesh = stokes.mesh
        self.n = mesh.n_independent
        with obs.phase("prec_setup"):
            with obs.phase("gmg_setup"):
                hier = mesh_hierarchy(mesh, max_coarse=max_coarse)
                etas = coarse_viscosities(hier, stokes.viscosity)
                prolongs = [
                    prolongation(hier.meshes[i], hier.meshes[i + 1])
                    for i in range(len(hier.meshes) - 1)
                ]
                self.hierarchy = hier
                self.gmg = [
                    self._component_cycle(
                        hier, etas, prolongs, stokes.bc_kind, a,
                        degree, lmax_scale, lmin_ratio,
                    )
                    for a in range(3)
                ]
            self.schur_diag = stokes.schur_diagonal()
        if np.any(self.schur_diag <= 0):
            raise AssertionError("Schur diagonal must be positive")
        self.n_vcycles = 0

    @staticmethod
    def _component_cycle(hier, etas, prolongs, bc_kind, a, degree, lmax_scale, lmin_ratio):
        """The :class:`GeometricMultigrid` stack of velocity component
        ``a``: per-level masked operators + smoothers, and the transfer
        operators with this component's Dirichlet masks folded in."""
        levels = []
        for i, m in enumerate(hier.meshes):  # lint: allow-loop (level count)
            bc_dofs = component_bc_dofs(m, bc_kind, a)
            op = MatFreeScalarPoisson(m, etas[i], bc_dofs)
            smoother = (
                None
                if i == len(hier.meshes) - 1
                else ChebyshevSmoother(
                    op, degree=degree, lmax_scale=lmax_scale, lmin_ratio=lmin_ratio
                )
            )
            P = None
            if i > 0:
                fine_mask = levels[i - 1].op.mask
                P = sp.csr_matrix(
                    sp.diags(fine_mask) @ prolongs[i - 1] @ sp.diags(op.mask)
                )
                P.eliminate_zeros()
            levels.append(GMGLevel(op=op, smoother=smoother, P=P))
        return GeometricMultigrid(levels)

    def apply(self, r: np.ndarray) -> np.ndarray:
        """``z = P^{-1} r``: three GMG V-cycles plus a diagonal scaling."""
        n = self.n
        z = np.empty_like(r)
        for a in range(3):
            z[a * n : (a + 1) * n] = self.gmg[a].vcycle(r[a * n : (a + 1) * n])
            self.n_vcycles += 1
        z[3 * n :] = r[3 * n :] / self.schur_diag
        return z

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Alias for :meth:`apply` (callable-preconditioner protocol)."""
        return self.apply(r)

    def refresh_schur(self, stokes: StokesSystem) -> None:
        """Rebind to a new system on the same mesh, refreshing only the
        cheap diagonal Schur approximation (the lagged-reuse path)."""
        self.stokes = stokes
        self.schur_diag = stokes.schur_diagonal()
        if np.any(self.schur_diag <= 0):
            raise AssertionError("Schur diagonal must be positive")

    def update_viscosity(self, viscosity: np.ndarray) -> None:
        """Re-weight every level for a new fine-grid viscosity without
        touching any cached structure: per-level averaging, coefficient
        rebinds, smoother bound re-estimates and the coarse dense solve —
        all O(dofs), no assembly."""
        etas = coarse_viscosities(self.hierarchy, np.asarray(viscosity, np.float64))
        for g in self.gmg:
            for i, lvl in enumerate(g.levels):  # lint: allow-loop (level count)
                lvl.op.update_viscosity(etas[i])
                if lvl.smoother is not None:
                    s = lvl.smoother
                    lvl.smoother = ChebyshevSmoother(
                        lvl.op,
                        degree=s.degree,
                        lmax_scale=s.lmax_scale,
                        lmin_ratio=s.lmin_ratio,
                    )
            nc = g.levels[-1].op.n
            Ac = g.levels[-1].op.apply(np.eye(nc, dtype=np.float64))
            Ac = 0.5 * (Ac + Ac.T)
            g._coarse_inv = np.linalg.pinv(Ac, hermitian=True)

    @property
    def operator_complexity(self) -> float:
        """Mean grid complexity over the three component hierarchies."""
        return float(np.mean([g.operator_complexity for g in self.gmg]))

    def grid_sizes(self) -> list:
        """Independent-dof count per level of component 0 (the three
        components share the hierarchy; only Dirichlet masks differ)."""
        return self.gmg[0].grid_sizes()

    def frozen_state(self) -> list:
        """Arrays fingerprinted by the lagged-preconditioner sanitizer:
        per-level coefficients, diagonals and transfers, plus the coarse
        dense inverses — in-place mutation of any of these would break
        the lagging premise silently."""
        out = []
        for g in self.gmg:
            for lvl in g.levels:
                out.append([lvl.op.cb, lvl.op.diagonal(), lvl.P])
            out.append(g._coarse_inv)
        return out
