"""Preconditioned conjugate gradients.

Used for the SPD subproblems that don't need MINRES: standalone
variable-viscosity Poisson solves (the Figure-9 experiment solves these
directly) and as a reference solver in tests.  Supports the same operator
/ preconditioner calling convention as :func:`repro.solvers.minres`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

__all__ = ["cg", "CGResult"]


@dataclass
class CGResult:
    """Solution and convergence history of a CG run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residuals: list = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        """Last recorded residual norm (``inf`` before any iteration)."""
        return self.residuals[-1] if self.residuals else np.inf


def _as_op(A) -> Callable[[np.ndarray], np.ndarray]:
    if callable(A):
        return A
    if sp.issparse(A) or isinstance(A, np.ndarray):
        return lambda x: A @ x
    raise TypeError("A must be callable or a matrix")


def cg(
    A,
    b: np.ndarray,
    M: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    maxiter: int | None = None,
) -> CGResult:
    """Solve the SPD system ``A x = b`` by preconditioned CG.

    ``M`` applies an SPD preconditioner (e.g. one AMG V-cycle); the
    stopping test is on the M-inner-product residual norm, relative to the
    initial one.
    """
    apply_A = _as_op(A)
    apply_M = M if M is not None else (lambda r: r)
    n = len(b)
    x = np.zeros(n, dtype=np.float64) if x0 is None else np.array(x0, dtype=np.float64)
    maxiter = maxiter if maxiter is not None else 10 * n

    r = b - apply_A(x)
    z = apply_M(r)
    rz = float(r @ z)
    if rz < 0:
        raise ValueError("preconditioner is not positive definite")
    norm0 = np.sqrt(rz)
    residuals = [norm0]
    if norm0 == 0.0:
        return CGResult(x=x, iterations=0, converged=True, residuals=residuals)
    p = z.copy()
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        Ap = apply_A(p)
        pAp = float(p @ Ap)
        if pAp <= 0:
            raise ValueError("operator is not positive definite")
        alpha = rz / pAp
        x = x + alpha * p
        r = r - alpha * Ap
        z = apply_M(r)
        rz_new = float(r @ z)
        if rz_new < 0:
            raise ValueError("preconditioner is not positive definite")
        residuals.append(np.sqrt(max(rz_new, 0.0)))
        if residuals[-1] <= tol * norm0:
            converged = True
            break
        p = z + (rz_new / rz) * p
        rz = rz_new
    return CGResult(x=x, iterations=it, converged=converged, residuals=residuals)
