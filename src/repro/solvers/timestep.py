"""Explicit time integrators.

- :func:`heun_step` — the generic predictor-corrector used for SUPG
  advection-diffusion (the FE-specific wrapper lives on
  :class:`~repro.fem.advection.AdvectionDiffusion`).
- :class:`LowStorageRK45` — the five-stage fourth-order low-storage
  Runge-Kutta scheme (Carpenter & Kennedy 1994) used by MANGLL's DG
  advection solver (Section VII: "a five-stage fourth-order explicit
  Runge-Kutta method").
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["heun_step", "LowStorageRK45"]


def heun_step(rate: Callable[[np.ndarray], np.ndarray], u: np.ndarray, dt: float) -> np.ndarray:
    """Explicit predictor-corrector (Heun / trapezoidal RK2) step."""
    k1 = rate(u)
    k2 = rate(u + dt * k1)
    return u + 0.5 * dt * (k1 + k2)


class LowStorageRK45:
    """Carpenter-Kennedy 4th-order 5-stage low-storage Runge-Kutta.

    Only one residual register is kept besides the solution — the scheme
    of choice for large DG simulations.
    """

    A = np.array(
        [
            0.0,
            -567301805773.0 / 1357537059087.0,
            -2404267990393.0 / 2016746695238.0,
            -3550918686646.0 / 2091501179385.0,
            -1275806237668.0 / 842570457699.0,
        ],
        dtype=np.float64,
    )
    B = np.array(
        [
            1432997174477.0 / 9575080441755.0,
            5161836677717.0 / 13612068292357.0,
            1720146321549.0 / 2090206949498.0,
            3134564353537.0 / 4481467310338.0,
            2277821191437.0 / 14882151754819.0,
        ],
        dtype=np.float64,
    )
    C = np.array(
        [
            0.0,
            1432997174477.0 / 9575080441755.0,
            2526269341429.0 / 6820363962896.0,
            2006345519317.0 / 3224310063776.0,
            2802321613138.0 / 2924317926251.0,
        ],
        dtype=np.float64,
    )

    def step(
        self,
        rate: Callable[[np.ndarray, float], np.ndarray],
        u: np.ndarray,
        t: float,
        dt: float,
    ) -> np.ndarray:
        """Advance ``u`` from ``t`` to ``t + dt``; ``rate(u, t)`` is the
        semi-discrete right-hand side."""
        res = np.zeros_like(u)
        u = u.copy()
        for s in range(5):
            res = self.A[s] * res + dt * rate(u, t + self.C[s] * dt)
            u = u + self.B[s] * res
        return u

    def advance(self, rate, u: np.ndarray, t0: float, dt: float, n_steps: int) -> np.ndarray:
        """Take ``n_steps`` fixed-size :meth:`step` calls from ``t0``."""
        t = t0
        for _ in range(n_steps):
            u = self.step(rate, u, t, dt)
            t += dt
        return u
