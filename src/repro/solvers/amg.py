"""Smoothed-aggregation algebraic multigrid (the BoomerAMG substitute).

The paper preconditions each velocity-component Poisson block with one
V-cycle of BoomerAMG (hypre).  Offline we build our own AMG from scratch:
smoothed aggregation (Vanek/Mandel/Brezina), which for variable-coefficient
scalar Poisson operators yields a bounded-convergence-factor V-cycle —
the property the Figure-2 iteration counts depend on.

Pipeline per level:

1. *Strength graph*: ``|a_ij| >= theta * sqrt(a_ii a_jj)``.
2. *Aggregation*: greedy root-point aggregation (three passes).
3. *Tentative prolongator*: piecewise-constant columns, normalized
   (near-nullspace = constants for Poisson).
4. *Prolongator smoothing*: ``P = (I - omega D^{-1} A) T`` with
   ``omega = 4/3 / rho(D^{-1} A)`` estimated by power iteration.
5. *Galerkin coarsening*: ``A_c = P^T A P``.

The V-cycle uses symmetric Gauss-Seidel (forward pre-, backward
post-smoothing) so that a single cycle with zero initial guess is an SPD
operator — required for use inside MINRES.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .. import obs

__all__ = [
    "SmoothedAggregationAMG",
    "AMGLevel",
    "aggregate",
    "aggregate_reference",
    "legacy_smoother",
    "legacy_aggregation",
]

#: When True (default), Gauss-Seidel triangular solves are factorized once
#: at setup (``splu`` in natural order, which performs exactly the
#: substitution sweep).  The False path re-runs ``spsolve_triangular``
#: per sweep — the pre-optimization behavior, kept for the perf harness's
#: before/after baseline.
USE_FACTORIZED_SMOOTHER = True

#: When True (default), setup uses the vectorized :func:`aggregate`;
#: False restores the sequential :func:`aggregate_reference`.
USE_VECTORIZED_AGGREGATION = True


@contextmanager
def legacy_smoother():
    """Run with the per-sweep ``spsolve_triangular`` smoother (baseline
    timing mode for :mod:`repro.perf.regress`)."""
    global USE_FACTORIZED_SMOOTHER
    prev = USE_FACTORIZED_SMOOTHER
    USE_FACTORIZED_SMOOTHER = False
    try:
        yield
    finally:
        USE_FACTORIZED_SMOOTHER = prev


@contextmanager
def legacy_aggregation():
    """Run AMG setup with the sequential greedy aggregation (baseline
    timing mode for :mod:`repro.perf.regress`)."""
    global USE_VECTORIZED_AGGREGATION
    prev = USE_VECTORIZED_AGGREGATION
    USE_VECTORIZED_AGGREGATION = False
    try:
        yield
    finally:
        USE_VECTORIZED_AGGREGATION = prev


def strength_graph(A: sp.csr_matrix, theta: float) -> sp.csr_matrix:
    """Symmetric strength-of-connection mask (boolean CSR, no diagonal)."""
    d = np.abs(A.diagonal())
    d = np.where(d > 0, d, 1.0)
    C = A.tocoo()
    scale = np.sqrt(d[C.row] * d[C.col])
    keep = (np.abs(C.data) >= theta * scale) & (C.row != C.col)
    return sp.csr_matrix(
        (np.ones(keep.sum()), (C.row[keep], C.col[keep])), shape=A.shape
    )


def aggregate_reference(S: sp.csr_matrix) -> tuple[np.ndarray, int]:
    """Sequential greedy root-point aggregation (pre-vectorization form,
    kept as the oracle for :func:`aggregate`'s equivalence/quality tests
    and as the perf harness baseline).

    Returns ``(agg, n_agg)`` where ``agg[i]`` is the aggregate index of
    node ``i`` (every node is assigned).
    """
    n = S.shape[0]
    agg = np.full(n, -1, dtype=np.int64)
    indptr, indices = S.indptr, S.indices
    n_agg = 0
    # pass 1: roots whose whole strong neighborhood is free
    for i in range(n):  # lint: allow-loop (sequential reference impl)
        if agg[i] >= 0:
            continue
        nbrs = indices[indptr[i] : indptr[i + 1]]
        if len(nbrs) and np.any(agg[nbrs] >= 0):
            continue
        agg[i] = n_agg
        agg[nbrs] = n_agg
        n_agg += 1
    # pass 2: attach stragglers to a neighboring aggregate
    unassigned = np.flatnonzero(agg < 0)
    for i in unassigned:
        nbrs = indices[indptr[i] : indptr[i + 1]]
        hit = nbrs[agg[nbrs] >= 0] if len(nbrs) else nbrs
        if len(hit):
            agg[i] = agg[hit[0]]
    # pass 3: remaining isolated nodes become singleton aggregates
    for i in np.flatnonzero(agg < 0):
        agg[i] = n_agg
        n_agg += 1
    return agg, n_agg


def _row_min(indptr: np.ndarray, indices: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Per-row minimum of ``v`` over a CSR pattern's columns (+inf for
    empty rows) — one min-propagation sweep of the strength graph."""
    n = len(indptr) - 1
    out = np.full(n, np.inf)
    nonempty = indptr[:-1] < indptr[1:]
    if nonempty.any():
        # reduceat over starts of nonempty rows only: indptr is constant
        # across empty rows, so each segment spans exactly one row
        out[nonempty] = np.minimum.reduceat(v[indices], indptr[:-1][nonempty])
    return out


def _gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated column indices of the given rows, plus per-row counts."""
    counts = indptr[rows + 1] - indptr[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype), counts
    excl = np.cumsum(counts) - counts
    flat = np.arange(total) + np.repeat(indptr[rows] - excl, counts)
    return indices[flat], counts


def aggregate(
    S: sp.csr_matrix, prio: np.ndarray | None = None
) -> tuple[np.ndarray, int]:
    """Vectorized root-point aggregation (same three-pass structure as
    :func:`aggregate_reference`, no per-node Python loop).  ``prio``
    overrides the pass-1 selection priorities (tests use this to pin a
    specific root layout).

    Pass 1 is a round-parallel maximal-independent-set sweep on the
    distance-2 graph: fixed seeded random priorities, and a node becomes
    a root when its priority is the minimum over its closed distance-2
    neighborhood (two min-propagation sweeps).  Selected roots are
    pairwise at distance >= 3, so their strong neighborhoods are disjoint
    and can be claimed in bulk.  Pass 2 attaches stragglers to the
    neighboring aggregate with the largest strong-connection weight
    (iterated so chains of stragglers resolve).  Pass 3 turns isolated
    leftovers into singletons.
    """
    n = S.shape[0]
    agg = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return agg, 0
    indptr, indices = S.indptr, S.indices
    if prio is None:
        # deterministic random priorities: round-parallel MIS on the
        # distance-2 graph needs O(log n) expected rounds with random
        # priorities, while natural grid ordering degenerates to O(n) rounds
        prio = np.random.default_rng(0x5AA6).permutation(n).astype(np.float64)
    else:
        prio = np.asarray(prio, dtype=np.float64)
    n_agg = 0
    # pass 1: parallel-MIS roots with disjoint strong neighborhoods
    while True:
        decided = agg >= 0
        blocked = (S @ decided.astype(np.float64)) > 0
        cand = ~decided & ~blocked
        if not cand.any():
            break
        v = np.where(cand, prio, np.inf)
        m1 = np.minimum(_row_min(indptr, indices, v), v)
        m2 = np.minimum(_row_min(indptr, indices, m1), m1)
        roots = np.flatnonzero(cand & (v == m2))
        ids = n_agg + np.arange(len(roots), dtype=np.int64)
        agg[roots] = ids
        nbrs, counts = _gather_rows(indptr, indices, roots)
        agg[nbrs] = np.repeat(ids, counts)
        n_agg += len(roots)
    # pass 2: attach stragglers to the most strongly connected aggregate
    # (argmax of summed strong-connection weight, smallest id on ties)
    while True:
        un = np.flatnonzero(agg < 0)
        if len(un) == 0 or n_agg == 0:
            break
        assigned = np.flatnonzero(agg >= 0)
        onehot = sp.csr_matrix(
            (np.ones(len(assigned)), (assigned, agg[assigned])), shape=(n, n_agg)
        )
        W = sp.csr_matrix(S[un] @ onehot)  # (straggler, aggregate) weights
        W.sum_duplicates()
        Wp, Wi, Wd = W.indptr, W.indices, W.data
        nonempty = np.flatnonzero(Wp[:-1] < Wp[1:])
        if len(nonempty) == 0:
            break
        starts = Wp[:-1][nonempty]
        rowmax = np.maximum.reduceat(Wd, starts)
        expand = np.repeat(rowmax, Wp[1:][nonempty] - starts)
        masked_cols = np.where(Wd == expand, Wi, n_agg)
        agg[un[nonempty]] = np.minimum.reduceat(masked_cols, starts)
    # pass 3: remaining isolated nodes become singleton aggregates
    rest = np.flatnonzero(agg < 0)
    agg[rest] = n_agg + np.arange(len(rest), dtype=np.int64)
    n_agg += len(rest)
    return agg, n_agg


def _estimate_rho(DinvA: sp.csr_matrix, iters: int = 12, seed: int = 0) -> float:
    """Power-iteration estimate of the spectral radius of D^{-1} A."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(DinvA.shape[0])
    x /= np.linalg.norm(x)
    rho = 1.0
    for _ in range(iters):  # lint: allow-loop (power iteration)
        y = DinvA @ x
        ny = np.linalg.norm(y)
        if ny == 0:
            return 1.0
        rho = ny
        x = y / ny
    return float(rho)


@dataclass
class AMGLevel:
    """One grid level of the AMG hierarchy: the (Galerkin-coarsened)
    operator, the prolongator from this level to the next finer one, and
    the precomputed Gauss-Seidel triangular factors."""

    A: sp.csr_matrix
    P: sp.csr_matrix | None  # prolongator to this level's fine grid (None on finest)
    L: sp.csr_matrix | None = None  # lower triangle incl. diag (GS)
    U: sp.csr_matrix | None = None  # upper triangle incl. diag (GS)
    #: factorized triangular solves, precomputed at setup: calling
    #: ``spsolve_triangular`` per smoothing sweep revalidates and copies
    #: the triangle every time, which dominated V-cycle cost
    Lsolve: object = None
    Usolve: object = None


def _triangular_solver(T: sp.csr_matrix):
    """Reusable direct solver for a triangular factor (natural order, no
    pivoting, so it performs exactly the substitution sweep)."""
    lu = spla.splu(
        sp.csc_matrix(T),
        permc_spec="NATURAL",
        options=dict(DiagPivotThresh=0.0, SymmetricMode=True),
    )
    return lu.solve


class SmoothedAggregationAMG:
    """AMG hierarchy with a symmetric V-cycle.

    Parameters
    ----------
    A:
        SPD CSR matrix.
    theta:
        Strength threshold (0.06-0.1 works well for Poisson-type).
    max_coarse:
        Direct-solve size at the coarsest level.
    presmooth, postsmooth:
        Gauss-Seidel sweeps per side.
    """

    def __init__(
        self,
        A: sp.csr_matrix,
        theta: float = 0.08,
        max_coarse: int = 64,
        max_levels: int = 20,
        presmooth: int = 1,
        postsmooth: int = 1,
    ):
        with obs.phase("amg_setup"):
            self._setup(A, theta, max_coarse, max_levels, presmooth, postsmooth)

    def _setup(self, A, theta, max_coarse, max_levels, presmooth, postsmooth):
        A = sp.csr_matrix(A)
        self.presmooth = presmooth
        self.postsmooth = postsmooth
        self.levels: list[AMGLevel] = [AMGLevel(A=A, P=None)]
        while (
            self.levels[-1].A.shape[0] > max_coarse
            and len(self.levels) < max_levels
        ):
            Af = self.levels[-1].A
            S = strength_graph(Af, theta)
            agg_fn = aggregate if USE_VECTORIZED_AGGREGATION else aggregate_reference
            agg, n_agg = agg_fn(S)
            if n_agg >= Af.shape[0]:
                break  # no coarsening possible
            T = sp.csr_matrix(
                (np.ones(Af.shape[0]), (np.arange(Af.shape[0]), agg)),
                shape=(Af.shape[0], n_agg),
            )
            # column-normalize the tentative prolongator
            col_counts = np.asarray(T.sum(axis=0)).ravel()
            T = sp.csr_matrix(T @ sp.diags(1.0 / np.sqrt(col_counts)))
            d = Af.diagonal()
            d = np.where(d != 0, d, 1.0)
            DinvA = sp.diags(1.0 / d) @ Af
            omega = (4.0 / 3.0) / max(_estimate_rho(sp.csr_matrix(DinvA)), 1e-12)
            P = sp.csr_matrix(T - omega * (DinvA @ T))
            Ac = sp.csr_matrix(P.T @ Af @ P)
            self.levels.append(AMGLevel(A=Ac, P=P))
        for lvl in self.levels[:-1]:
            lvl.L = sp.csr_matrix(sp.tril(lvl.A, format="csr"))
            lvl.U = sp.csr_matrix(sp.triu(lvl.A, format="csr"))
            if USE_FACTORIZED_SMOOTHER:
                lvl.Lsolve = _triangular_solver(lvl.L)
                lvl.Usolve = _triangular_solver(lvl.U)
        # coarse direct solve
        Acoarse = self.levels[-1].A.toarray()
        # pinv tolerates a semidefinite coarse operator (pure Neumann)
        self._coarse_inv = np.linalg.pinv(Acoarse)

    # -- stats ---------------------------------------------------------------

    @property
    def n_levels(self) -> int:
        """Number of grid levels (including the dense coarsest one)."""
        return len(self.levels)

    @property
    def operator_complexity(self) -> float:
        """Total nnz over all levels / fine nnz (setup quality metric)."""
        fine = self.levels[0].A.nnz
        return sum(l.A.nnz for l in self.levels) / max(fine, 1)

    def grid_sizes(self) -> list[int]:
        """Unknown count per level, finest first."""
        return [l.A.shape[0] for l in self.levels]

    # -- cycle ------------------------------------------------------------------

    def _smooth_forward(self, lvl: AMGLevel, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        for _ in range(self.presmooth):  # lint: allow-loop (sweep count)
            r = b - lvl.A @ x
            if lvl.Lsolve is not None:
                x = x + lvl.Lsolve(r)
            else:
                x = x + spla.spsolve_triangular(lvl.L, r, lower=True)
        return x

    def _smooth_backward(self, lvl: AMGLevel, x: np.ndarray, b: np.ndarray) -> np.ndarray:
        for _ in range(self.postsmooth):  # lint: allow-loop (sweep count)
            r = b - lvl.A @ x
            if lvl.Usolve is not None:
                x = x + lvl.Usolve(r)
            else:
                x = x + spla.spsolve_triangular(lvl.U, r, lower=False)
        return x

    def _cycle(self, k: int, b: np.ndarray) -> np.ndarray:
        if k == len(self.levels) - 1:
            return self._coarse_inv @ b
        lvl = self.levels[k]
        x = self._smooth_forward(lvl, np.zeros_like(b), b)
        P = self.levels[k + 1].P
        r = b - lvl.A @ x
        xc = self._cycle(k + 1, P.T @ r)
        x = x + P @ xc
        return self._smooth_backward(lvl, x, b)

    def vcycle(self, b: np.ndarray) -> np.ndarray:
        """One V-cycle with zero initial guess: an SPD approximation of
        ``A^{-1}`` suitable as a MINRES preconditioner block."""
        obs.counter("amg_vcycles")
        return self._cycle(0, b)

    def solve(
        self, b: np.ndarray, tol: float = 1e-8, maxiter: int = 100
    ) -> tuple[np.ndarray, int, bool]:
        """Stationary V-cycle iteration (used standalone in Fig. 9)."""
        x = np.zeros_like(b)
        nb = np.linalg.norm(b)
        if nb == 0:
            return x, 0, True
        for it in range(1, maxiter + 1):  # lint: allow-loop (solver iteration)
            r = b - self.levels[0].A @ x
            if np.linalg.norm(r) <= tol * nb:
                return x, it - 1, True
            x = x + self.vcycle(r)
        return x, maxiter, False
