"""In-process SPMD execution with an MPI-like communicator.

The paper ran on Ranger with MPI; this module provides the substitute
substrate: each simulated rank is a thread, and :class:`SimComm` exposes the
subset of MPI used by ALPS/RHEA — point-to-point ``send``/``recv``,
``allgather``, ``allreduce``, ``alltoall`` (and the vector variant),
``exscan``, ``bcast``, and ``barrier``.  All algorithms in
:mod:`repro.octree`, :mod:`repro.mesh` and :mod:`repro.solvers` are written
SPMD-style against this interface, exactly as they would be against
``mpi4py``; only the transport differs.

Collectives are implemented with a shared slot array and a two-phase
barrier (deposit / read) which is correct for bulk-synchronous programs.
Every operation is tallied in :class:`~repro.parallel.stats.CommStats` so
the machine model can price the communication at arbitrary core counts.

Use :func:`run_spmd` to execute a rank function on ``P`` simulated ranks::

    def kernel(comm, n):
        local = np.arange(n) + comm.rank * n
        total = comm.allreduce(local.sum())
        return total

    results = run_spmd(4, kernel, 10)   # list of 4 identical totals

Exceptions raised by any rank abort the whole world (the barrier is broken
so no thread hangs) and are re-raised in the caller.

Backends
--------
``run_spmd(..., backend="thread")`` (the default) runs thread-per-rank in
this process; ``backend="process"`` dispatches the same kernel to the
long-lived worker processes of :mod:`repro.parallel.procomm`, where each
rank has its own interpreter (real cores, no GIL) and payloads move
through shared memory.  ``REPRO_SPMD_BACKEND`` overrides the default for
call sites that do not pass ``backend``.  The kwarg name ``backend`` is
reserved — rank functions cannot take a keyword argument of that name.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable

import numpy as np

from .stats import CommStats, payload_nbytes

__all__ = [
    "SimComm",
    "SimWorld",
    "run_spmd",
    "SpmdAbort",
    "set_comm_factory",
    "get_comm_factory",
    "InjectedFault",
    "arm_fault",
    "disarm_fault",
    "armed_fault",
    "fault_injection",
    "check_fault",
]


class SpmdAbort(RuntimeError):
    """Raised in surviving ranks when another rank failed."""


class InjectedFault(RuntimeError):
    """Deliberate rank kill from the fault-injection hook (tests only)."""

    def __init__(self, rank: int, step: int):
        super().__init__(
            f"injected fault: rank {rank} killed at step {step}"
        )
        self.rank = rank
        self.step = step

    def __reduce__(self):
        # default exception pickling replays args=(message,) against the
        # (rank, step) constructor; spell the constructor call out so the
        # process backend can ship the fault back to the parent
        return (InjectedFault, (self.rank, self.step))


# One armed fault at a time, *per interpreter*: the driver loops poll it
# via :func:`check_fault`, so a test can kill a chosen rank at a chosen
# step and exercise the crash/restore path end to end.  The module global
# is only the thread-backend fast path — the process backend re-arms a
# worker-local copy from :func:`armed_fault` in every run envelope
# (module state armed in the parent is invisible to worker interpreters)
# and writes the fired state back through :func:`_mark_fault_fired`.
_fault_lock = threading.Lock()
_fault: dict | None = None


def arm_fault(rank: int, step: int) -> None:
    """Arm the hook: the first :func:`check_fault` on ``rank`` whose step
    counter has reached ``step`` raises :class:`InjectedFault` there (the
    world then aborts, as for any real rank failure)."""
    global _fault
    with _fault_lock:
        _fault = {"rank": int(rank), "step": int(step), "fired": False}


def disarm_fault() -> None:
    global _fault
    with _fault_lock:
        _fault = None


def armed_fault() -> dict | None:
    """Snapshot of the currently armed fault spec (or ``None``).

    The process backend broadcasts this snapshot to every worker at
    world construction so the fault can fire *inside* a worker
    interpreter, where the parent's module global does not exist.
    """
    with _fault_lock:
        return dict(_fault) if _fault is not None else None


def _arm_fault_spec(spec: dict | None) -> None:
    """Install a fault spec snapshot verbatim (worker-side re-arm)."""
    global _fault
    with _fault_lock:
        _fault = dict(spec) if spec else None


def _mark_fault_fired() -> None:
    """Record that the armed fault fired in a worker process, preserving
    the fire-at-most-once-per-arming contract across backends."""
    with _fault_lock:
        if _fault is not None:
            _fault["fired"] = True


@contextmanager
def fault_injection(rank: int, step: int):
    """``with fault_injection(1, 40): ...`` — armed inside, always
    disarmed on exit (even when the injected crash propagates out)."""
    arm_fault(rank, step)
    try:
        yield
    finally:
        disarm_fault()


def check_fault(comm, step: int) -> None:
    """Driver hook: raise :class:`InjectedFault` if a fault is armed for
    this rank and ``step`` has reached the armed step.

    ``comm=None`` means a serial driver (treated as rank 0).  Fires at
    most once per arming.
    """
    f = _fault  # lint: disable=R10 — worker-local copy, re-armed per run envelope
    if f is None:
        return
    rank = comm.rank if comm is not None else 0
    if rank != f["rank"] or step < f["step"]:
        return
    with _fault_lock:
        if f["fired"] or _fault is not f:  # lint: disable=R10
            return
        f["fired"] = True
    raise InjectedFault(rank, step)


def _reduce_extremum(vals, ufunc, pyfunc):
    """Min/max over mixed scalar/ndarray contributions.

    Contributions are normalized *before* dispatching: if any rank sent
    an ndarray the reduction is elementwise with scalars broadcast
    (what MPI's ``MPI_MIN``/``MPI_MAX`` do for matching buffers), and
    the result never aliases a contribution.  Dispatching on ``vals[0]``
    alone — the old behavior — took the scalar branch whenever rank 0
    happened to contribute a scalar, and ``min``/``max`` over a list
    containing an ndarray then raised or silently compared garbage.
    """
    if any(isinstance(v, np.ndarray) for v in vals):
        out = vals[0]
        out = out.copy() if isinstance(out, np.ndarray) else out
        for v in vals[1:]:
            out = ufunc(out, v)
        return out if isinstance(out, np.ndarray) else np.asarray(out)
    return pyfunc(vals)


_REDUCTIONS: dict[str, Callable] = {
    "sum": lambda vals: _tree_sum(vals),
    "min": lambda vals: _reduce_extremum(vals, np.minimum, min),
    "max": lambda vals: _reduce_extremum(vals, np.maximum, max),
    "prod": lambda vals: _tree_prod(vals),
    "lor": lambda vals: any(vals),
    "land": lambda vals: all(vals),
}


def _tree_sum(vals):
    out = vals[0]
    if isinstance(out, np.ndarray):
        out = out.copy()
        for v in vals[1:]:
            out += v
        return out
    for v in vals[1:]:
        out = out + v
    return out


def _tree_prod(vals):
    out = vals[0]
    if isinstance(out, np.ndarray):
        out = out.copy()
    for v in vals[1:]:
        out = out * v
    return out


def _copy_payload(obj: Any) -> Any:
    """Defensive copy of the numpy content of a message payload.

    Real MPI always lands data in a receive buffer owned by the
    receiving rank; the in-process transport hands every rank the *same*
    object, so without a copy two simulated ranks can alias (and
    corrupt through) one buffer — a divergence from MPI semantics that
    would also mask genuine mutation bugs from the cache sanitizer.
    Arrays are copied; containers are rebuilt around copied arrays;
    scalars and opaque objects pass through.
    """
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(x) for x in obj)
    if isinstance(obj, dict):
        return {k: _copy_payload(v) for k, v in obj.items()}
    return obj


class SimWorld:
    """Shared state for one SPMD execution: barrier, slots, mailboxes."""

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self._barrier = threading.Barrier(nranks)
        self._slots: list[Any] = [None] * nranks
        self._mail_lock = threading.Condition()
        self._mail: dict[tuple[int, int, int], deque] = {}
        self._error: BaseException | None = None
        self._error_lock = threading.Lock()

    def abort(self, exc: BaseException) -> None:
        with self._error_lock:
            if self._error is None:
                self._error = exc
        self._barrier.abort()
        with self._mail_lock:
            self._mail_lock.notify_all()

    def wait_barrier(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError:
            raise SpmdAbort("another rank aborted") from None

    # -- point-to-point transport (backend substitution point) -------------
    #
    # SimComm delegates message delivery to the world through these two
    # methods so communicator subclasses (CheckedComm, the fuzzer) stay
    # transport-agnostic: the threaded world keeps an in-process mail
    # dict, the process-backend world (procomm.ProcWorld) moves payloads
    # across interpreters.  Defensive copying stays in SimComm.

    def post(self, src: int, dest: int, tag: int, obj: Any) -> None:
        """Deliver ``obj`` on channel ``(src, dest, tag)``; never blocks."""
        with self._mail_lock:
            self._mail.setdefault((src, dest, tag), deque()).append(obj)
            self._mail_lock.notify_all()

    def fetch(self, src: int, dest: int, tag: int) -> Any:
        """Block until a message on ``(src, dest, tag)`` arrives; FIFO
        per channel.  Raises :class:`SpmdAbort` if the world dies."""
        key = (src, dest, tag)
        with self._mail_lock:
            while True:
                if self._error is not None:
                    raise SpmdAbort("another rank aborted")
                q = self._mail.get(key)
                if q:
                    return q.popleft()
                self._mail_lock.wait(timeout=0.2)


class SimComm:
    """MPI-like communicator bound to one simulated rank.

    Attributes
    ----------
    rank, size:
        This rank's index and the number of ranks in the world.
    stats:
        The per-rank :class:`CommStats` tally.
    """

    def __init__(self, world: SimWorld, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.nranks
        self.stats = CommStats()

    # -- point-to-point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Post a message; never blocks (buffered send)."""
        if not (0 <= dest < self.size):
            raise ValueError(f"invalid dest rank {dest}")
        self.stats.record_p2p(payload_nbytes(obj))
        self._world.post(self.rank, dest, tag, obj)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Block until a message from ``source`` with ``tag`` arrives."""
        # defensive copy: the sender may still hold (and later mutate)
        # the posted object — or, on the process backend, the payload is
        # a zero-copy view into a shared-memory region about to be
        # retired; real MPI hands the receiver its own buffer
        return _copy_payload(self._world.fetch(source, self.rank, tag))

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives ---------------------------------------------------------

    def barrier(self) -> None:
        self.stats.record_collective("barrier", 0)
        self._world.wait_barrier()

    def _exchange(self, obj: Any) -> list[Any]:
        """Deposit ``obj`` in this rank's slot; return everyone's deposit.

        Two barriers: one after deposit (all slots filled), one after read
        (slots may be reused by the next collective).
        """
        w = self._world
        w._slots[self.rank] = obj
        w.wait_barrier()
        result = list(w._slots)
        w.wait_barrier()
        return result

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one object from every rank, returned in rank order.

        Numpy content is defensively copied: every rank receives its own
        buffers (as with real MPI), never views shared with other ranks.
        """
        self.stats.record_collective("allgather", payload_nbytes(obj))
        return [_copy_payload(v) for v in self._exchange(obj)]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self.stats.record_collective("gather", payload_nbytes(obj))
        vals = self._exchange(obj)
        return [_copy_payload(v) for v in vals] if self.rank == root else None

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self.stats.record_collective(
            "bcast", payload_nbytes(obj) if self.rank == root else 0
        )
        vals = self._exchange(obj if self.rank == root else None)
        return _copy_payload(vals[root])

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce ``value`` across ranks with ``op`` and return the result.

        The reduction is computed deterministically in rank order on every
        rank, so all ranks see a bit-identical result.
        """
        if op not in _REDUCTIONS:
            raise ValueError(f"unknown reduction op {op!r}")
        self.stats.record_collective("allreduce", payload_nbytes(value))
        vals = self._exchange(value)
        return _REDUCTIONS[op](vals)

    def exscan(self, value, op: str = "sum"):
        """Exclusive prefix reduction; rank 0 receives the zero element.

        Only ``sum`` is supported (the only exscan ALPS needs: computing
        global offsets of local element/dof counts).
        """
        if op != "sum":
            raise ValueError("exscan supports op='sum' only")
        self.stats.record_collective("exscan", payload_nbytes(value))
        vals = self._exchange(value)
        if isinstance(value, np.ndarray):
            acc = np.zeros_like(value)
            for v in vals[: self.rank]:
                acc = acc + v
            return acc
        acc = 0
        for v in vals[: self.rank]:
            acc += v
        return acc

    def alltoall(self, sendlist: list[Any]) -> list[Any]:
        """Personalized all-to-all: ``sendlist[j]`` goes to rank ``j``.

        Returns a list where entry ``i`` is what rank ``i`` sent to us.
        """
        if len(sendlist) != self.size:
            raise ValueError(
                f"alltoall needs {self.size} entries, got {len(sendlist)}"
            )
        self.stats.record_collective("alltoall", payload_nbytes(sendlist))
        mat = self._exchange(sendlist)
        return [_copy_payload(mat[i][self.rank]) for i in range(self.size)]

    def alltoallv_arrays(self, parts: list[np.ndarray]) -> list[np.ndarray]:
        """Alltoall specialised to lists of NumPy arrays (ALPS's main
        redistribution primitive, used by PartitionTree / TransferFields)."""
        return self.alltoall(parts)

    # -- convenience ---------------------------------------------------------

    def allgather_concat(self, arr: np.ndarray) -> np.ndarray:
        """Allgather 1-D/2-D arrays and concatenate along axis 0."""
        parts = self.allgather(arr)
        return np.concatenate([p for p in parts if len(p)], axis=0) if any(
            len(p) for p in parts
        ) else arr[:0]

    def global_offsets(self, local_count: int) -> tuple[int, int]:
        """Return (my_offset, global_total) for a local item count."""
        counts = self.allgather(int(local_count))
        return sum(counts[: self.rank]), sum(counts)

    def _finalize(self) -> None:
        """Hook called by :func:`run_spmd` after the rank function returns
        (normally or not).  Subclasses flush buffered state here (the
        sanitizer's delivery fuzzer drains held messages)."""


# -- communicator factory hook ----------------------------------------------

#: when set, :func:`run_spmd` builds communicators through this factory
#: instead of :class:`SimComm` — the substitution point for
#: :class:`repro.analysis.sanitize.CheckedComm`
_COMM_FACTORY: Callable[[SimWorld, int], SimComm] | None = None


def set_comm_factory(factory: Callable[[SimWorld, int], SimComm] | None) -> None:
    """Install (or clear, with ``None``) the communicator factory used by
    :func:`run_spmd`.  ``factory(world, rank)`` must return a
    :class:`SimComm` (or subclass) bound to that rank."""
    global _COMM_FACTORY
    _COMM_FACTORY = factory


def get_comm_factory() -> Callable[[SimWorld, int], SimComm] | None:
    return _COMM_FACTORY


def _resolve_comm_factory() -> Callable[[SimWorld, int], SimComm]:
    """The communicator factory in effect: an installed factory wins,
    else ``REPRO_SANITIZE`` substitutes CheckedComm, else plain SimComm.
    Shared with the process backend, whose workers resolve the factory
    the same way after applying the run envelope."""
    factory = _COMM_FACTORY
    if factory is None and os.environ.get("REPRO_SANITIZE", "") not in ("", "0"):
        # sanitized mode requested via environment: substitute CheckedComm
        # (lazy import; repro.analysis.sanitize imports this module)
        from ..analysis.sanitize import CheckedComm

        factory = CheckedComm
    return SimComm if factory is None else factory


def _build_comms(world: SimWorld) -> list[SimComm]:
    factory = _resolve_comm_factory()
    return [factory(world, r) for r in range(world.nranks)]


def _resolve_backend(backend: str | None) -> str:
    """Explicit ``backend`` argument, else ``REPRO_SPMD_BACKEND``, else
    ``"thread"``."""
    if backend is None:
        backend = os.environ.get("REPRO_SPMD_BACKEND", "").strip() or "thread"
    if backend not in ("thread", "process"):
        raise ValueError(
            f"unknown SPMD backend {backend!r} (expected 'thread' or 'process')"
        )
    return backend


def _run_threads(world: SimWorld, comms: list[SimComm], fn, args, kwargs):
    """Thread-per-rank execution over pre-built communicators."""
    results: list[Any] = [None] * world.nranks

    def runner(r: int) -> None:
        try:
            try:
                results[r] = fn(comms[r], *args, **kwargs)
            finally:
                comms[r]._finalize()
        except SpmdAbort:
            pass
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            world.abort(exc)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"simrank-{r}")
        for r in range(world.nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if world._error is not None:
        raise world._error
    return results


def run_spmd(
    nranks: int, fn: Callable, *args, backend: str | None = None, **kwargs
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` simulated ranks.

    Returns the list of per-rank return values in rank order.  If any rank
    raises, the world is aborted and the first exception is re-raised.

    ``backend="thread"`` (default) runs thread-per-rank in this process;
    ``backend="process"`` runs each rank in a long-lived worker process
    (:mod:`repro.parallel.procomm`) with shared-memory payload transport.
    ``REPRO_SPMD_BACKEND`` supplies the default when ``backend`` is not
    passed.  ``nranks == 1`` always runs inline on the calling thread
    (fast path used heavily by tests; also what MPI does for one rank).
    """
    if _resolve_backend(backend) == "process" and nranks > 1:
        from .procomm import run_spmd_process

        return run_spmd_process(nranks, fn, args, kwargs)[0]
    world = SimWorld(nranks)
    comms = _build_comms(world)
    if nranks == 1:
        try:
            return [fn(comms[0], *args, **kwargs)]
        finally:
            comms[0]._finalize()
    return _run_threads(world, comms, fn, args, kwargs)


def run_spmd_with_comms(
    nranks: int, fn: Callable, *args, backend: str | None = None, **kwargs
):
    """Like :func:`run_spmd` but also returns the communicators (for their
    post-run ``stats``).  On the process backend the returned objects are
    lightweight proxies carrying each worker's gathered ``stats`` (and any
    still-bound obs timer results), not live communicators."""
    if _resolve_backend(backend) == "process" and nranks > 1:
        from .procomm import run_spmd_process

        return run_spmd_process(nranks, fn, args, kwargs)
    world = SimWorld(nranks)
    comms = _build_comms(world)
    if nranks == 1:
        try:
            return [fn(comms[0], *args, **kwargs)], comms
        finally:
            comms[0]._finalize()
    results = _run_threads(world, comms, fn, args, kwargs)
    return results, comms
