"""Process-pool SPMD backend: real ranks, shared-memory transport.

:mod:`repro.parallel.simcomm` runs every simulated rank as a thread under
the GIL, so measured "parallel" wall-clock never scales with host cores.
This module provides the second backend behind the same Comm API:
``run_spmd(nranks, fn, backend="process")`` dispatches the rank function
to ``nranks`` long-lived **worker processes** (spawn start method, safe on
every platform) where each rank owns a full interpreter.

Transport
---------
Collective payloads follow exactly the slot discipline SimComm documents
(deposit / barrier / read / barrier), but the "slot array" is a
per-rank ``multiprocessing.shared_memory`` **ring** split into two parity
regions (seq mod 2).  A deposit serializes the payload into the rank's
current parity region: numpy arrays are written raw (64-byte aligned,
described by ``(offset, dtype, shape)``) and reconstructed on the reader
side as **zero-copy views**; everything else rides in a pickled
descriptor.  Double buffering makes the views race-free: a region is only
rewritten two exchanges later, and SimComm's defensive ``_copy_payload``
(unchanged, shared across backends) has materialized every view by then.
Oversized payloads spill to one-shot shared-memory segments; tiny arrays
and non-array payloads fall back to pickle.  Point-to-point messages
travel a per-rank ``multiprocessing.Queue`` (pickle-over-pipe) with the
same spill path for large arrays, preserving MPI's per-channel FIFO.

The worker-side world (:class:`ProcWorld`) duck-types ``SimWorld`` —
``_slots``, ``_barrier`` (a real ``multiprocessing.Barrier`` with
``threading.Barrier`` semantics), ``_error``, ``abort`` — so
:class:`~repro.analysis.sanitize.CheckedComm`, the delivery fuzzer, and
the commflow conformance monitor run **unchanged** on top and certify the
backend bitwise-equivalent to the threaded oracle.

Spawn-safety rules for kernels
------------------------------
Kernels and their arguments are shipped by value with a pickler that also
handles **closures and nested functions** (code marshaled, cells by
value, globals resolved through the defining module).  A kernel must not
rely on module-global *mutable* state armed in the parent — that state
does not exist in a worker interpreter (lint rule R10 flags such reads).
The run envelope re-broadcasts the supported globals per run: the
communicator factory, the armed fault spec (:func:`armed_fault`), the
sanitizer environment, and the installed conformance schedule.  Worker
``CommStats`` and any still-bound obs ``PhaseTimer`` results are gathered
back to the parent at world teardown.
"""

from __future__ import annotations

import atexit
import importlib
import io
import marshal
import multiprocessing as mp
import os
import pickle
import queue as _queue
import signal
import struct
import sys
import threading
import types
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

from . import simcomm
from .simcomm import InjectedFault, SimComm, SpmdAbort

__all__ = [
    "ProcWorld",
    "ProcCommProxy",
    "run_spmd_process",
    "available",
    "shutdown_pools",
]

#: per-rank ring segment size (two parity regions of half this each)
_RING_BYTES = int(os.environ.get("REPRO_SHM_RING_BYTES", str(1 << 22)))
#: arrays below this ride pickled inside the collective descriptor
_INLINE_MAX = 2048
#: p2p arrays at or above this move through a one-shot spill segment
_P2P_SPILL_MIN = int(os.environ.get("REPRO_SHM_MIN_BYTES", str(1 << 15)))
_ALIGN = 64
_HEADER = struct.Struct("<QQ")  # (exchange seq, descriptor nbytes)

#: environment propagated from parent to worker per run envelope
_ENV_KEYS = ("REPRO_SANITIZE", "REPRO_SANITIZE_TIMEOUT")


# --------------------------------------------------------------------------
# closure-capable codec (kernels in tests are nested functions)


def _real_module_name(fn: types.FunctionType) -> str | None:
    """The importable module name for ``fn``, seeing through ``__main__``.

    ``python -m pkg.mod`` runs ``pkg.mod`` under the name ``__main__``;
    a worker can still import it by its spec name, which keeps module
    functions by-reference (and their relative imports working)."""
    name = fn.__module__
    if name in ("__main__", "__mp_main__"):
        spec = getattr(sys.modules.get(name), "__spec__", None)
        spec_name = getattr(spec, "name", None)
        if spec_name in (None, "__main__", "__mp_main__"):
            return None
        return spec_name
    return name or None


def _lookup_qualname(module: str, qualname: str):
    target: Any = importlib.import_module(module)
    for part in qualname.split("."):
        target = getattr(target, part)
    return target


def _importable(fn: types.FunctionType) -> bool:
    """Can ``fn`` be recovered by module + qualname lookup in a worker?"""
    if "<locals>" in fn.__qualname__:
        return False
    module = _real_module_name(fn)
    if module is None:
        return False
    try:
        return _lookup_qualname(module, fn.__qualname__) is fn
    except Exception:
        return False


def _global_names(code: types.CodeType) -> set:
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _global_names(const)
    return names


def _rebuild_function(
    code_bytes, module, name, qualname, defaults, kwdefaults, closure_spec, extra
):
    """Worker-side reconstruction of a by-value function (see
    :class:`_SpmdPickler`)."""
    code = marshal.loads(code_bytes)
    if extra is None:
        g = importlib.import_module(module).__dict__
    else:
        g = dict(extra)
        g.setdefault("__builtins__", __builtins__)
        g.setdefault("__name__", module or "__procomm__")
    cells = None
    if closure_spec is not None:
        cells = tuple(
            types.CellType(val) if filled else types.CellType()
            for filled, val in closure_spec
        )
    fn = types.FunctionType(code, g, name, defaults, cells)
    fn.__kwdefaults__ = kwdefaults
    fn.__qualname__ = qualname
    fn.__module__ = module
    return fn


def _reduce_function(fn: types.FunctionType):
    closure = None
    if fn.__closure__ is not None:
        closure = []
        for cell in fn.__closure__:
            try:
                closure.append((True, cell.cell_contents))
            except ValueError:  # empty cell (e.g. not-yet-bound recursion)
                closure.append((False, None))
    module = fn.__module__ or ""
    extra = None
    if module in ("", "__main__", "__mp_main__"):
        # the defining module cannot be re-imported in the worker:
        # capture the referenced globals by value instead
        g = fn.__globals__
        extra = {n: g[n] for n in _global_names(fn.__code__) if n in g}
        if g.get("__package__"):
            extra["__package__"] = g["__package__"]  # relative imports
    return (
        _rebuild_function,
        (
            marshal.dumps(fn.__code__),
            module,
            fn.__name__,
            fn.__qualname__,
            fn.__defaults__,
            fn.__kwdefaults__,
            closure,
            extra,
        ),
    )


class _SpmdPickler(pickle.Pickler):
    """Pickler that ships closures/nested functions and modules by value.

    Importable functions take the default by-reference path; everything
    else is reduced to (marshaled code, module name, cell values) and
    rebuilt in the worker with the defining module's globals.
    """

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            if _importable(obj):
                module = _real_module_name(obj)
                if module != obj.__module__:
                    # importable, but only under its spec name (the
                    # parent ran it as __main__ via ``python -m``)
                    return (_lookup_qualname, (module, obj.__qualname__))
                return NotImplemented  # default by-reference pickling
            return _reduce_function(obj)
        if isinstance(obj, types.ModuleType):
            return (importlib.import_module, (obj.__name__,))
        return NotImplemented


def dumps_obj(obj: Any) -> bytes:
    """Serialize with the closure-capable SPMD pickler."""
    buf = io.BytesIO()
    _SpmdPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


loads_obj = pickle.loads


# --------------------------------------------------------------------------
# payload <-> shared memory encoding


# Resource-tracker discipline: the spawn workers inherit the parent's
# tracker process, whose cache is a *set* of names.  Attaching registers
# a name too (3.11 behavior) but that is a set-add no-op, so the rule is
# simply: exactly one unlink per segment, by its designated owner, and
# never an explicit unregister — the unlink's built-in unregister
# balances the set, and a crash leaves the name for the tracker's
# leak cleanup.


def _close_seg(seg, unlink: bool) -> None:
    try:
        seg.close()
    except Exception:
        pass
    if unlink:
        try:
            seg.unlink()
        except Exception:
            pass


def _make_spill(a: np.ndarray):
    seg = shared_memory.SharedMemory(create=True, size=a.nbytes)
    dst = np.frombuffer(seg.buf, dtype=a.dtype, count=a.size).reshape(a.shape)
    np.copyto(dst, a)
    return seg


def _pack_tree(obj: Any, arrays: list, threshold: int):
    """Payload -> descriptor tree; large clean ndarrays are pulled out
    into ``arrays`` and replaced by index leaves (mirrors the container
    walk of ``simcomm._copy_payload``, so copy semantics line up)."""
    if (
        isinstance(obj, np.ndarray)
        and obj.nbytes >= threshold
        and not obj.dtype.hasobject
    ):
        a = np.ascontiguousarray(obj)
        arrays.append(a)
        return ("a", len(arrays) - 1, a.dtype, a.shape)
    if isinstance(obj, list):
        return ("l", [_pack_tree(x, arrays, threshold) for x in obj])
    if isinstance(obj, tuple):
        return ("t", [_pack_tree(x, arrays, threshold) for x in obj])
    if isinstance(obj, dict):
        return ("d", [(k, _pack_tree(v, arrays, threshold)) for k, v in obj.items()])
    return ("p", obj)


def _rewrite(tree, leafmap):
    kind = tree[0]
    if kind == "a":
        return leafmap[tree[1]]
    if kind in ("l", "t"):
        return (kind, [_rewrite(x, leafmap) for x in tree[1]])
    if kind == "d":
        return ("d", [(k, _rewrite(v, leafmap)) for k, v in tree[1]])
    return tree


def _align_up(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _deposit_region(obj: Any, mv: memoryview, seq: int) -> list:
    """Serialize ``obj`` into one parity region: header, pickled
    descriptor, then raw array data packed downward from the region top.
    Arrays that do not fit spill to one-shot segments (returned for
    deferred unlink by the creator)."""
    arrays: list = []
    tree = _pack_tree(obj, arrays, _INLINE_MAX)
    cap = len(mv)
    hi = cap
    leafmap: dict = {}
    spills: list = []
    placed: list = []  # (array index, offset, aligned size), top-down order
    for i in sorted(range(len(arrays)), key=lambda k: -arrays[k].nbytes):
        need = _align_up(arrays[i].nbytes)
        if hi - need >= _HEADER.size:
            hi -= need
            leafmap[i] = ("A", hi, arrays[i].dtype, arrays[i].shape)
            placed.append((i, hi, need))
        else:
            seg = _make_spill(arrays[i])
            spills.append(seg)
            leafmap[i] = ("S", seg.name, arrays[i].dtype, arrays[i].shape)
    while True:
        desc = dumps_obj(_rewrite(tree, leafmap))
        if _HEADER.size + len(desc) <= hi:
            break
        if placed:
            # descriptor collides with the lowest-placed array: evict it
            i, off, need = placed.pop()
            hi += need
            seg = _make_spill(arrays[i])
            spills.append(seg)
            leafmap[i] = ("S", seg.name, arrays[i].dtype, arrays[i].shape)
            continue
        # nothing left to evict: the descriptor itself goes indirect
        blob = desc
        seg = shared_memory.SharedMemory(create=True, size=len(blob))
        seg.buf[: len(blob)] = blob
        spills.append(seg)
        desc = dumps_obj(("I", seg.name, len(blob)))
        break
    _HEADER.pack_into(mv, 0, seq, len(desc))
    mv[_HEADER.size : _HEADER.size + len(desc)] = desc
    for i, off, _need in placed:
        a = arrays[i]
        if a.nbytes:
            dst = np.frombuffer(mv, dtype=a.dtype, count=a.size, offset=off)
            np.copyto(dst.reshape(a.shape), a)
    return spills


def _unpack_tree(t, mv, attach: Callable):
    kind = t[0]
    if kind == "p":
        return t[1]
    if kind == "A":
        _, off, dt, shape = t
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return np.frombuffer(mv, dtype=dt, count=n, offset=off).reshape(shape)
    if kind == "S":
        _, name, dt, shape = t
        seg = attach(name)
        n = int(np.prod(shape, dtype=np.int64)) if shape else 1
        return np.frombuffer(seg.buf, dtype=dt, count=n).reshape(shape)
    if kind in ("l", "t"):
        items = [_unpack_tree(x, mv, attach) for x in t[1]]
        return items if kind == "l" else tuple(items)
    if kind == "d":
        return {k: _unpack_tree(v, mv, attach) for k, v in t[1]}
    raise ValueError(f"bad descriptor leaf {t!r}")


def _decode_region(mv: memoryview, expect_seq: int, attach: Callable):
    seq, dlen = _HEADER.unpack_from(mv, 0)
    if seq != expect_seq:
        raise SpmdAbort(
            f"shared-memory slot discipline violated: region seq {seq}, "
            f"expected {expect_seq}"
        )
    desc = loads_obj(bytes(mv[_HEADER.size : _HEADER.size + dlen]))
    if isinstance(desc, tuple) and desc and desc[0] == "I":
        seg = attach(desc[1])
        desc = loads_obj(bytes(seg.buf[: desc[2]]))
    return _unpack_tree(desc, mv, attach)


def _discard_tree(t) -> None:
    """Unlink the spill segments of a never-consumed p2p descriptor."""
    kind = t[0]
    if kind == "S":
        try:
            seg = shared_memory.SharedMemory(name=t[1])
            _close_seg(seg, unlink=True)
        except Exception:
            pass
    elif kind in ("l", "t"):
        for x in t[1]:
            _discard_tree(x)
    elif kind == "d":
        for _k, v in t[1]:
            _discard_tree(v)


# --------------------------------------------------------------------------
# the worker-side world


class _ProcSlots:
    """``SimWorld._slots`` facade: ``slots[rank] = obj`` deposits into
    this rank's shared-memory parity region, ``list(slots)`` decodes
    every rank's deposit (zero-copy array views)."""

    __slots__ = ("_w",)

    def __init__(self, world: "ProcWorld"):
        self._w = world

    def __len__(self) -> int:
        return self._w.nranks

    def __setitem__(self, rank: int, obj: Any) -> None:
        if rank != self._w.rank:
            raise ValueError(
                f"rank {self._w.rank} cannot deposit into slot {rank}"
            )
        self._w._deposit(obj)

    def __iter__(self):
        return iter(self._w._read_all())


class ProcWorld:
    """Per-worker facade duck-typing :class:`~repro.parallel.simcomm.SimWorld`.

    Lives inside one worker process, bound to that process's rank.  The
    barrier is a real ``multiprocessing.Barrier`` (same API and
    ``BrokenBarrierError`` semantics as ``threading.Barrier``, so
    CheckedComm's timed metadata barriers work unchanged); the slot array
    is the shared-memory ring; ``abort`` propagates through a shared
    event plus barrier poisoning.
    """

    def __init__(self, rank, nranks, barrier, abort_event, mail_queues, rings, run_id):
        self.rank = rank
        self.nranks = nranks
        self._barrier = barrier
        self._abort_event = abort_event
        self._mail_queues = mail_queues
        self._inbox = mail_queues[rank]
        self._rings = rings
        self._ring_half = _RING_BYTES // 2
        self._run_id = run_id
        self._slots = _ProcSlots(self)
        self._seq = 0
        self._local_error: BaseException | None = None
        self._channels: dict = {}  # (src, tag) -> deque of (obj, spill segs)
        self._spills_in: dict = {}  # seq -> attached segments (close at retire)
        self._spills_out: dict = {}  # seq -> created segments (unlink at retire)
        self._p2p_retire: list = []  # consumed p2p spills (close+unlink next op)

    # -- SimWorld surface ---------------------------------------------------

    @property
    def _error(self) -> BaseException | None:
        if self._local_error is not None:
            return self._local_error
        if self._abort_event.is_set():
            return SpmdAbort("another rank aborted")
        return None

    def abort(self, exc: BaseException) -> None:
        if self._local_error is None:
            self._local_error = exc
        self._abort_event.set()
        self._barrier.abort()

    def wait_barrier(self) -> None:
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError:
            raise SpmdAbort("another rank aborted") from None

    # -- collective slot transport -----------------------------------------

    def _region(self, rank: int, seq: int) -> memoryview:
        base = (seq % 2) * self._ring_half
        return self._rings[rank].buf[base : base + self._ring_half]

    def _deposit(self, obj: Any) -> None:
        if self._error is not None:
            raise SpmdAbort("another rank aborted")
        self._retire_collective(self._seq - 2)
        self._retire_p2p()
        self._spills_out[self._seq] = _deposit_region(
            obj, self._region(self.rank, self._seq), self._seq
        )
        self._seq += 1

    def _read_all(self) -> list:
        seq = self._seq - 1
        segs = self._spills_in.setdefault(seq, [])

        def attach(name):
            seg = shared_memory.SharedMemory(name=name)
            segs.append(seg)
            return seg

        return [
            _decode_region(self._region(r, seq), seq, attach)
            for r in range(self.nranks)
        ]

    def _retire_collective(self, upto: int) -> None:
        # a parity region (and its spills) may be retired once the world
        # is two exchanges past it: every reader's defensive copies have
        # completed before it could reach exchange upto+2
        for store, unlink in ((self._spills_in, False), (self._spills_out, True)):
            for s in [s for s in store if s <= upto]:
                for seg in store.pop(s):
                    _close_seg(seg, unlink=unlink)

    # -- point-to-point transport ------------------------------------------

    def post(self, src: int, dest: int, tag: int, obj: Any) -> None:
        if self._error is not None:
            raise SpmdAbort("another rank aborted")
        self._retire_p2p()
        arrays: list = []
        tree = _pack_tree(obj, arrays, _P2P_SPILL_MIN)
        leafmap = {}
        # lint: allow-loop — O(spilled arrays per message), each a segment syscall
        for i, a in enumerate(arrays):
            seg = _make_spill(a)
            leafmap[i] = ("S", seg.name, a.dtype, a.shape)
            # ownership transfers to the receiver (it closes and unlinks)
            seg.close()
        self._mail_queues[dest].put(
            (self._run_id, src, tag, dumps_obj(_rewrite(tree, leafmap)))
        )

    def fetch(self, src: int, dest: int, tag: int) -> Any:
        self._retire_p2p()
        key = (src, tag)
        while True:
            chan = self._channels.get(key)
            if chan:
                obj, segs = chan.popleft()
                # segs stay open until the next world op: SimComm.recv
                # defensively copies the views before user code resumes
                self._p2p_retire.extend(segs)
                return obj
            if self._error is not None:
                raise SpmdAbort("another rank aborted")
            try:
                rid, msrc, mtag, blob = self._inbox.get(timeout=0.05)
            except _queue.Empty:
                continue
            tree = loads_obj(blob)
            if rid != self._run_id:
                _discard_tree(tree)  # stale message from an aborted run
                continue
            segs = []

            def attach(name, _segs=segs):
                seg = shared_memory.SharedMemory(name=name)
                _segs.append(seg)
                return seg

            self._channels.setdefault((msrc, mtag), deque()).append(
                (_unpack_tree(tree, None, attach), segs)
            )

    def _retire_p2p(self) -> None:
        for seg in self._p2p_retire:
            _close_seg(seg, unlink=True)
        self._p2p_retire = []

    # -- teardown -----------------------------------------------------------

    def _finalize_task(self) -> None:
        self._retire_collective(self._seq)
        self._retire_p2p()
        for chan in self._channels.values():
            for _obj, segs in chan:
                for seg in segs:
                    _close_seg(seg, unlink=True)
        self._channels.clear()


# --------------------------------------------------------------------------
# worker process


def _capture_timer(comm) -> dict | None:
    """If the kernel left an obs PhaseTimer bound, gather its snapshots
    (parent-side ``obs.generate_report`` / ``imbalance`` consume them)."""
    try:
        from ..obs import timer as obs_timer

        t = obs_timer.active()
        if t is None:
            return None
        obs_timer.disable()
        return {"results": t.results(), "trace": t.trace_data()}
    except Exception:
        return None


def _apply_env(env: dict) -> None:
    for k, v in env.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v


def _execute_task(rank, nranks, run_id, spec, barrier, abort_event, mail_queues, rings):
    """Run one envelope; returns (status, payload)."""
    from ..analysis import conformance

    world = ProcWorld(rank, nranks, barrier, abort_event, mail_queues, rings, run_id)
    _apply_env(spec["env"])
    simcomm.set_comm_factory(spec["factory"])
    simcomm._arm_fault_spec(spec["fault"])
    if spec["schedule"] is not None:
        conformance.install_schedule(spec["schedule"])
    comm = simcomm._resolve_comm_factory()(world, rank)
    status, payload = "ok", None
    try:
        try:
            result = spec["fn"](comm, *spec["args"], **spec["kwargs"])
        finally:
            comm._finalize()
            timer = _capture_timer(comm)
        payload = {"result": result, "stats": comm.stats.snapshot(), "timer": timer}
    except SpmdAbort:
        status = "abort"
    except BaseException as exc:  # noqa: BLE001 - shipped back to the parent
        world.abort(exc)
        status, payload = "error", exc
    finally:
        world._finalize_task()
        simcomm.set_comm_factory(None)
        simcomm.disarm_fault()
        conformance.uninstall_schedule()
    return status, payload


def _worker_main(rank, nranks, barrier, abort_event, task_q, reply_q, mail_queues,
                 ring_names, parent_path):
    """Long-lived worker loop: attach rings once, then run envelopes."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    sys.path[:0] = [p for p in parent_path if p not in sys.path]
    # a kernel calling run_spmd inside a worker must not spawn nested pools
    os.environ["REPRO_SPMD_BACKEND"] = "thread"
    rings = []
    for name in ring_names:
        seg = shared_memory.SharedMemory(name=name)
        rings.append(seg)
    while True:
        task = task_q.get()
        if task is None:
            break
        run_id, blob = task
        try:
            spec = loads_obj(blob)
            status, payload = _execute_task(
                rank, nranks, run_id, spec, barrier, abort_event, mail_queues, rings
            )
        except BaseException as exc:  # noqa: BLE001 - infrastructure failure
            abort_event.set()
            barrier.abort()
            status, payload = "error", exc
        try:
            out = dumps_obj(payload)
        except Exception as enc_exc:
            if status == "ok":
                status = "error"
                payload = RuntimeError(f"unpicklable kernel result: {enc_exc}")
            else:
                payload = RuntimeError(f"{type(payload).__name__}: {payload}")
            out = dumps_obj(payload)
        reply_q.put((rank, run_id, status, out))
    for seg in rings:
        _close_seg(seg, unlink=False)


# --------------------------------------------------------------------------
# parent-side pool


def _schedule_source():
    """The conformance schedule to broadcast: whatever is installed in
    the parent, else the ``REPRO_COMMFLOW_SCHEDULE`` path."""
    try:
        from ..analysis import conformance

        src = conformance.installed_source()
    except Exception:
        src = None
    return src if src is not None else (
        os.environ.get("REPRO_COMMFLOW_SCHEDULE") or None
    )


class _ProcPool:
    """``nranks`` long-lived spawn workers plus their shared plumbing."""

    def __init__(self, nranks: int):
        ctx = mp.get_context("spawn")
        self.nranks = nranks
        self.barrier = ctx.Barrier(nranks)
        self.abort_event = ctx.Event()
        self.task_qs = [ctx.SimpleQueue() for _ in range(nranks)]
        self.reply_q = ctx.Queue()
        self.mail_qs = [ctx.Queue() for _ in range(nranks)]
        self.rings = [
            shared_memory.SharedMemory(create=True, size=_RING_BYTES)
            for _ in range(nranks)
        ]
        self.procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    r,
                    nranks,
                    self.barrier,
                    self.abort_event,
                    self.task_qs[r],
                    self.reply_q,
                    self.mail_qs,
                    [s.name for s in self.rings],
                    list(sys.path),
                ),
                name=f"procomm-rank-{r}",
                daemon=True,
            )
            for r in range(nranks)
        ]
        for p in self.procs:
            p.start()
        self.run_counter = 0
        self.broken = False
        self._lock = threading.Lock()

    def run_task(self, fn, args, kwargs) -> dict:
        """Dispatch one envelope to every rank; returns
        ``{rank: (status, payload)}`` after all ranks reply."""
        with self._lock:
            self.run_counter += 1
            run_id = self.run_counter
            spec = {
                "fn": fn,
                "args": args,
                "kwargs": kwargs,
                "factory": simcomm.get_comm_factory(),
                "env": {k: os.environ.get(k) for k in _ENV_KEYS},
                "fault": simcomm.armed_fault(),
                "schedule": _schedule_source(),
            }
            blob = dumps_obj(spec)
            for q in self.task_qs:
                q.put((run_id, blob))
            replies: dict = {}
            while len(replies) < self.nranks:
                try:
                    rank, rid, status, payload = self.reply_q.get(timeout=1.0)
                except _queue.Empty:
                    dead = [p.name for p in self.procs if not p.is_alive()]
                    if dead:
                        self.broken = True
                        self.abort_event.set()
                        self.barrier.abort()
                        raise RuntimeError(
                            f"SPMD worker process(es) died: {dead}"
                        ) from None
                    continue
                if rid != run_id:
                    continue  # straggler reply from an abandoned run
                replies[rank] = (status, loads_obj(payload))
            self._drain_mail()
            if any(s != "ok" for s, _ in replies.values()):
                # broken barrier / set abort flag: reset while all workers
                # idle in task_q.get() (they replied, so they are past it)
                self.abort_event.clear()
                self.barrier.reset()
            return replies

    def _drain_mail(self) -> None:
        """Discard undelivered p2p messages (and unlink their spills)."""
        for q in self.mail_qs:
            while True:
                try:
                    _rid, _src, _tag, blob = q.get_nowait()
                except _queue.Empty:
                    break
                except Exception:
                    break
                try:
                    _discard_tree(loads_obj(blob))
                except Exception:
                    pass

    def shutdown(self) -> None:
        for q in self.task_qs:
            try:
                q.put(None)
            except Exception:
                pass
        for p in self.procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        for seg in self.rings:
            _close_seg(seg, unlink=True)


_POOLS: dict[int, _ProcPool] = {}
_POOLS_LOCK = threading.Lock()


def _get_pool(nranks: int) -> _ProcPool:
    with _POOLS_LOCK:
        pool = _POOLS.get(nranks)
        if pool is not None and pool.broken:
            pool.shutdown()
            pool = None
        if pool is None:
            pool = _POOLS[nranks] = _ProcPool(nranks)
        return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool and unlink its rings."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_pools)


_AVAILABLE: bool | None = None


def available() -> bool:
    """Can this host run the process backend (POSIX shared memory works)?"""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            seg = shared_memory.SharedMemory(create=True, size=64)
            _close_seg(seg, unlink=True)
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


# --------------------------------------------------------------------------
# entry point (called by run_spmd / run_spmd_with_comms)


class ProcCommProxy:
    """Post-run stand-in for a worker rank's communicator.

    Carries the worker's gathered :class:`~repro.parallel.stats.CommStats`
    (``.stats``) plus ``rank``/``size``, so parent-side consumers of
    ``run_spmd_with_comms`` (perf harness, examples, obs reports) work
    identically across backends.  ``timer_results`` / ``trace_data`` hold
    the snapshots of an obs PhaseTimer the kernel left bound, else None.
    """

    def __init__(self, rank: int, size: int, stats, timer: dict | None):
        self.rank = rank
        self.size = size
        self.stats = stats
        self.timer_results = (timer or {}).get("results")
        self.trace_data = (timer or {}).get("trace")


def run_spmd_process(nranks: int, fn, args=(), kwargs=None):
    """Run ``fn(comm, *args, **kwargs)`` on ``nranks`` worker processes.

    Returns ``(results, proxies)`` in rank order, mirroring
    :func:`~repro.parallel.simcomm.run_spmd_with_comms`.  The first
    failing rank's exception is re-raised in the parent, with the
    fire-once fault-injection contract preserved across the process
    boundary.
    """
    if nranks < 1:
        raise ValueError(f"nranks must be >= 1, got {nranks}")
    if not available():
        raise RuntimeError(
            "process SPMD backend unavailable: POSIX shared memory cannot "
            "be created on this host (use backend='thread')"
        )
    replies = _get_pool(nranks).run_task(fn, tuple(args), dict(kwargs or {}))
    errors = [p for _r, (s, p) in sorted(replies.items()) if s == "error"]
    if errors:
        exc = errors[0]
        if isinstance(exc, InjectedFault):
            simcomm._mark_fault_fired()
        raise exc
    aborted = [r for r, (s, _p) in replies.items() if s == "abort"]
    if aborted:
        raise SpmdAbort(
            f"worker rank(s) {sorted(aborted)} aborted without a recorded error"
        )
    results = [replies[r][1]["result"] for r in range(nranks)]
    proxies = [
        ProcCommProxy(r, nranks, replies[r][1]["stats"], replies[r][1]["timer"])
        for r in range(nranks)
    ]
    return results, proxies
