"""Communication and computation accounting for simulated SPMD runs.

Every :class:`~repro.parallel.simcomm.SimComm` owns a :class:`CommStats`
instance that records how many messages and bytes each communication
primitive moved, and how many collective rounds were executed.  The machine
model (:mod:`repro.parallel.machine`) converts these counts into modeled
wall-clock times for arbitrary core counts, which is how the paper-scale
core counts (up to 62,464) are produced from runs on a handful of simulated
ranks.
"""

from __future__ import annotations

import dataclasses
import sys
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommStats", "payload_nbytes", "merge_stats"]


def payload_nbytes(obj) -> int:
    """Estimate the wire size of a message payload in bytes.

    The accounting is *position-independent*: a value contributes the
    same byte count whether it is sent bare or reached through a
    container, so phase-level byte attribution composes.  Rules:

    - NumPy arrays report their exact buffer size (``.nbytes``).
    - NumPy scalars report their itemsize (``np.float32(1)`` is 4, not
      a flat 8), again via ``.nbytes``.
    - ``bytes``/``bytearray``/``memoryview`` report their length.
    - Containers (list/tuple/set/frozenset/dict) sum their items
      recursively; dicts include the keys.
    - Dataclass instances sum their fields recursively (an MPI-style
      send would serialize the payload, not the Python object header).
    - Native ``bool``/``int``/``float``/``complex`` count a flat 8
      (the wire width of the C types the paper's MPI code would use).
    - Anything else falls back to ``sys.getsizeof``.

    Example::

        payload_nbytes(np.zeros(3)) == 24
        payload_nbytes([np.float32(1.0)]) == payload_nbytes(np.float32(1.0)) == 4
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, np.generic):
        # numpy scalar: its actual wire width, consistent between the
        # bare-scalar and through-a-container paths
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            payload_nbytes(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        )
    if isinstance(obj, (int, float, complex, bool)):
        return 8
    return sys.getsizeof(obj)


@dataclass
class CommStats:
    """Per-rank tally of communication activity.

    Attributes
    ----------
    p2p_messages, p2p_bytes:
        Point-to-point sends issued by this rank and their payload volume.
    collective_calls:
        Number of collective operations (allgather, allreduce, alltoall,
        scan, barrier, bcast) this rank participated in, keyed by name.
    collective_bytes:
        Payload bytes this rank *contributed* to each collective, keyed by
        name.  For an allgather of one int per rank this is 8, regardless
        of P; the machine model supplies the P-dependent cost.
    flops:
        Floating point work explicitly charged via :meth:`add_flops`
        (numerical kernels charge analytic counts).
    """

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_calls: dict = field(default_factory=dict)
    collective_bytes: dict = field(default_factory=dict)
    flops: float = 0.0

    def record_p2p(self, nbytes: int) -> None:
        self.p2p_messages += 1
        self.p2p_bytes += nbytes

    def record_collective(self, name: str, nbytes: int) -> None:
        self.collective_calls[name] = self.collective_calls.get(name, 0) + 1
        self.collective_bytes[name] = self.collective_bytes.get(name, 0) + nbytes

    def add_flops(self, n: float) -> None:
        self.flops += float(n)

    @property
    def total_collective_calls(self) -> int:
        return sum(self.collective_calls.values())

    @property
    def total_bytes(self) -> int:
        return self.p2p_bytes + sum(self.collective_bytes.values())

    def snapshot(self) -> "CommStats":
        """Return a deep copy so callers can diff before/after a phase."""
        return CommStats(
            p2p_messages=self.p2p_messages,
            p2p_bytes=self.p2p_bytes,
            collective_calls=dict(self.collective_calls),
            collective_bytes=dict(self.collective_bytes),
            flops=self.flops,
        )

    def merge(self, other: "CommStats") -> "CommStats":
        """Pure pairwise merge: a new tally with summed counts.

        Associative and commutative, so parent-side aggregation of
        worker stats may fold partial merges in any order (the process
        backend gathers rank stats as replies arrive).  Neither operand
        is mutated; ``s.merge(s)`` correctly doubles every count.
        """
        out = self.snapshot()
        out += other
        return out

    def __add__(self, other: "CommStats") -> "CommStats":
        if not isinstance(other, CommStats):
            return NotImplemented
        return self.merge(other)

    def __radd__(self, other):
        # support sum(list_of_stats) whose seed is the int 0
        if other == 0:
            return self.snapshot()
        return NotImplemented

    def __iadd__(self, other: "CommStats") -> "CommStats":
        """In-place accumulate ``other`` into this tally (aliasing-safe)."""
        if not isinstance(other, CommStats):
            return NotImplemented
        if other is self:
            other = other.snapshot()  # freeze before self-mutation
        self.p2p_messages += other.p2p_messages
        self.p2p_bytes += other.p2p_bytes
        self.flops += other.flops
        for k, v in list(other.collective_calls.items()):
            self.collective_calls[k] = self.collective_calls.get(k, 0) + v
        for k, v in list(other.collective_bytes.items()):
            self.collective_bytes[k] = self.collective_bytes.get(k, 0) + v
        return self

    def since(self, earlier: "CommStats") -> "CommStats":
        """Return the delta between this tally and an earlier snapshot."""
        calls = {
            k: v - earlier.collective_calls.get(k, 0)
            for k, v in self.collective_calls.items()
            if v - earlier.collective_calls.get(k, 0)
        }
        nbytes = {
            k: v - earlier.collective_bytes.get(k, 0)
            for k, v in self.collective_bytes.items()
            if v - earlier.collective_bytes.get(k, 0)
        }
        return CommStats(
            p2p_messages=self.p2p_messages - earlier.p2p_messages,
            p2p_bytes=self.p2p_bytes - earlier.p2p_bytes,
            collective_calls=calls,
            collective_bytes=nbytes,
            flops=self.flops - earlier.flops,
        )


def merge_stats(stats: list[CommStats]) -> CommStats:
    """Aggregate per-rank stats into a world total (sums over ranks)."""
    out = CommStats()
    for s in stats:
        out += s
    return out
