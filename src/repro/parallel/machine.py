"""Performance model of a Ranger-class machine.

The paper's scalability results were measured on TACC's Ranger (62,976
cores of 2.3 GHz AMD Barcelona, InfiniBand fat tree).  We cannot time 62K
cores, so the benchmarks execute the real distributed algorithms on a
handful of simulated ranks (measuring exact operation and communication
counts through :class:`~repro.parallel.stats.CommStats`) and use this
alpha-beta machine model to price those counts at the paper's core counts.

The model is deliberately simple — latency ``alpha``, inverse bandwidth
``beta``, a sustained per-core flop rate, and textbook cost formulas for
the collectives (recursive doubling / tree algorithms, the same family MPI
implementations of the era used).  The paper's claims are about *shape*
(who scales, where overhead concentrates), which such a model preserves;
we never claim to reproduce Ranger's absolute seconds.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from .stats import CommStats

__all__ = ["MachineModel", "RANGER"]


@dataclass(frozen=True)
class MachineModel:
    """Alpha-beta-gamma machine model.

    Parameters
    ----------
    alpha:
        Point-to-point message latency in seconds.
    beta:
        Inverse bandwidth in seconds per byte (per core share).
    flop_rate:
        Sustained floating point rate per core, flop/s.  The paper observed
        ~0.58 Gflop/s/core for the low-order FEM transport kernel and up to
        ~4.4 Gflop/s/core for high-order dense element kernels; pick the
        rate that matches the kernel being modeled.
    mem_rate:
        Sustained memory streaming rate per core, bytes/s (prices
        bandwidth-bound kernels like sparse matvec).
    """

    name: str = "ranger"
    alpha: float = 2.3e-6
    beta: float = 1.0e-9
    flop_rate: float = 0.58e9
    mem_rate: float = 1.2e9
    #: Sustained rate of the *matrix-based* element kernel: large dense
    #: GEMMs run near peak (the paper reports up to ~4.4 Gflop/s/core for
    #: high-order dense element kernels on Ranger).
    flop_rate_dense: float = 4.4e9
    #: Sustained rate of the *tensor-product* (sum-factorized) element
    #: kernel: short per-axis contractions with little register reuse run
    #: an order of magnitude below dense peak.  With these two rates the
    #: matrix/tensor crossover sits at ``(p+1)^2 = dense/tensor = 10``,
    #: i.e. between p = 2 and p = 4 — the Section VII Ranger observation.
    flop_rate_tensor: float = 0.44e9
    #: Effective fan-out of the "alltoall" exchanges.  ALPS's alltoalls are
    #: sparse: the space-filling-curve partition gives each rank O(1)
    #: spatial neighbors ("neighboring elements tend to reside on the same
    #: core"), and repartitioning ships contiguous curve segments to a few
    #: consecutive ranks.  26 bounds the spatial neighborhood.
    alltoall_fanout: int = 26

    # -- primitive costs -----------------------------------------------------

    def t_flops(self, nflops: float) -> float:
        """Time to execute ``nflops`` floating point operations on one core."""
        return nflops / self.flop_rate

    def t_stream(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` through one core's memory system."""
        return nbytes / self.mem_rate

    def t_element_kernel(self, p: int, variant: str, n_elements: int) -> float:
        """Modeled time of one element-gradient sweep over ``n_elements``
        order-``p`` elements with the chosen kernel variant.

        Roofline form: the compute time at the variant's sustained rate
        (``flop_rate_dense`` for matrix-based GEMMs, ``flop_rate_tensor``
        for sum-factorized contractions) lower-bounded by the time to
        stream the element data (:func:`repro.mangll.tensor.matrix_bytes`
        / ``tensor_bytes``).  Flop counts are the Section VII
        ``6 (p+1)^6`` vs ``6 (p+1)^4`` per element.
        """
        from ..mangll.tensor import (  # imported here: mangll -> solvers
            matrix_bytes,  # -> (type-only) fem would otherwise cycle at init
            matrix_flops,
            tensor_bytes,
            tensor_flops,
        )

        if variant == "matrix":
            nflops = matrix_flops(p) * n_elements
            nbytes = matrix_bytes(p) * n_elements
            rate = self.flop_rate_dense
        elif variant == "tensor":
            nflops = tensor_flops(p) * n_elements
            nbytes = tensor_bytes(p) * n_elements
            rate = self.flop_rate_tensor
        else:
            raise ValueError(f"unknown variant {variant!r}")
        return max(nflops / rate, self.t_stream(nbytes))

    def t_p2p(self, nbytes: float, nmessages: int = 1) -> float:
        """Time for point-to-point traffic from one rank's perspective."""
        return nmessages * self.alpha + nbytes * self.beta

    def t_collective(self, name: str, nbytes: float, p: int) -> float:
        """Modeled time of one collective on ``p`` cores.

        ``nbytes`` is the payload contributed per rank (what CommStats
        records).  Formulas follow the standard tree / recursive-doubling
        algorithms:

        - barrier, allreduce, bcast, exscan: ``ceil(log2 p)`` rounds
        - allgather, gather: log-latency plus ``p * nbytes`` volume
          (recursive doubling moves the full gathered vector)
        - alltoall: sparse neighbor exchange — ``min(p-1, fanout)``
          messages carrying the rank's full contributed payload (see
          ``alltoall_fanout``)
        """
        if p <= 1:
            return 0.0
        lg = math.ceil(math.log2(p))
        if name in ("barrier",):
            return lg * self.alpha
        if name in ("allreduce", "bcast", "exscan"):
            return lg * (self.alpha + nbytes * self.beta)
        if name in ("allgather", "gather"):
            return lg * self.alpha + p * nbytes * self.beta
        if name == "alltoall":
            fanout = min(p - 1, self.alltoall_fanout)
            return fanout * self.alpha + nbytes * self.beta
        raise ValueError(f"unknown collective {name!r}")

    # -- pricing a CommStats tally --------------------------------------------

    def t_comm(self, stats: CommStats, p: int) -> float:
        """Modeled communication time of one rank's tally at ``p`` cores.

        Collective payloads recorded at the executed rank count are priced
        per call at the modeled core count; point-to-point traffic is priced
        directly.  This assumes the per-rank payloads observed at the
        executed scale are representative of the modeled scale, which holds
        under isogranular (weak) scaling where per-rank work is constant.
        """
        t = self.t_p2p(stats.p2p_bytes, stats.p2p_messages)
        for name, calls in stats.collective_calls.items():
            if calls == 0:
                continue
            per_call = stats.collective_bytes.get(name, 0) / calls
            t += calls * self.t_collective(name, per_call, p)
        return t

    def t_total(self, stats: CommStats, p: int) -> float:
        """Modeled compute + communication time for one rank's tally."""
        return self.t_flops(stats.flops) + self.t_comm(stats, p)

    # -- anchoring to a measurement -------------------------------------------

    def anchored_to(
        self, stats: CommStats, p: int, measured_seconds: float
    ) -> "MachineModel":
        """A rescaled model whose ``t_total(stats, p)`` equals a measurement.

        The process SPMD backend (:mod:`repro.parallel.procomm`) yields
        *real* multi-core wall times at small ``p``; anchoring scales every
        rate of this model by one common factor so the modeled time of the
        measured tally reproduces the measured seconds exactly, and
        extrapolations to paper-scale core counts start from a measured
        point instead of a modeled one.  Shape (the relative cost of
        latency, bandwidth, and compute) is deliberately preserved — only
        the overall machine speed is recalibrated.
        """
        if measured_seconds <= 0.0:
            raise ValueError(f"measured_seconds must be > 0, got {measured_seconds}")
        modeled = self.t_total(stats, p)
        if modeled <= 0.0:
            raise ValueError("cannot anchor: the tally has no modeled cost")
        f = measured_seconds / modeled
        return dataclasses.replace(
            self,
            name=f"{self.name}@P{p}",
            alpha=self.alpha * f,
            beta=self.beta * f,
            flop_rate=self.flop_rate / f,
            mem_rate=self.mem_rate / f,
            flop_rate_dense=self.flop_rate_dense / f,
            flop_rate_tensor=self.flop_rate_tensor / f,
        )


#: Default Ranger-calibrated model (low-order FEM sustained rate).
RANGER = MachineModel()
