"""Simulated-MPI SPMD substrate (substitute for Ranger + MPI).

Public API:

- :func:`run_spmd` / :func:`run_spmd_with_comms` — execute an SPMD kernel
  on ``P`` ranks; ``backend="thread"`` (default) simulates ranks as
  threads, ``backend="process"`` runs real worker processes over shared
  memory (:mod:`repro.parallel.procomm`).
- :class:`SimComm` — the MPI-like communicator handed to each rank.
- :class:`CommStats` — per-rank communication/flop accounting.
- :class:`MachineModel` / :data:`RANGER` — alpha-beta performance model
  used to price measured counts at paper-scale core counts.
"""

from .machine import RANGER, MachineModel
from .simcomm import (
    InjectedFault,
    SimComm,
    SimWorld,
    SpmdAbort,
    arm_fault,
    armed_fault,
    check_fault,
    disarm_fault,
    fault_injection,
    run_spmd,
    run_spmd_with_comms,
)
from .stats import CommStats, merge_stats, payload_nbytes

__all__ = [
    "RANGER",
    "MachineModel",
    "SimComm",
    "SimWorld",
    "SpmdAbort",
    "InjectedFault",
    "arm_fault",
    "armed_fault",
    "disarm_fault",
    "fault_injection",
    "check_fault",
    "run_spmd",
    "run_spmd_with_comms",
    "CommStats",
    "merge_stats",
    "payload_nbytes",
]
