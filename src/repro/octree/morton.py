"""Morton (z-order) space-filling curve encoding for octrees.

ALPS orders the leaves of the distributed octree along a Morton space-
filling curve (Section IV-A of the paper): a pre-order traversal of the
octree in (z, y, x) triples.  The key property exploited everywhere is
that the finest-level descendants of any octant occupy a *contiguous*
range of Morton keys, so octant containment, ownership lookup across
ranks, and partitioning all reduce to interval arithmetic on sorted
``uint64`` key arrays.

Coordinates are integers in ``[0, 2**MAX_LEVEL)`` — units of the finest
possible cell, exactly as in p4est.  ``MAX_LEVEL = 21`` so a full 3-D key
needs 63 bits and fits ``uint64``.

All functions are vectorized over NumPy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_LEVEL",
    "ROOT_LEN",
    "morton_encode",
    "morton_decode",
    "spread3",
    "compact3",
    "key_range_size",
    "octant_length",
]

#: Deepest supported refinement level; coordinates use 21 bits per axis.
MAX_LEVEL = 21

#: Side length of the root octant in finest-cell units (2**MAX_LEVEL).
ROOT_LEN = 1 << MAX_LEVEL

_M0 = np.uint64(0x1FFFFF)
_M1 = np.uint64(0x1F00000000FFFF)
_M2 = np.uint64(0x1F0000FF0000FF)
_M3 = np.uint64(0x100F00F00F00F00F)
_M4 = np.uint64(0x10C30C30C30C30C3)
_M5 = np.uint64(0x1249249249249249)

_U1 = np.uint64(1)
_U2 = np.uint64(2)
_U4 = np.uint64(4)
_U8 = np.uint64(8)
_U16 = np.uint64(16)
_U32 = np.uint64(32)


def spread3(v: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value so bit ``i`` moves to ``3*i``."""
    v = np.asarray(v).astype(np.uint64) & _M0
    v = (v | (v << _U32)) & _M1
    v = (v | (v << _U16)) & _M2
    v = (v | (v << _U8)) & _M3
    v = (v | (v << _U4)) & _M4
    v = (v | (v << _U2)) & _M5
    return v


def compact3(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spread3`: collect every third bit into the low 21."""
    v = np.asarray(v).astype(np.uint64) & _M5
    v = (v | (v >> _U2)) & _M4
    v = (v | (v >> _U4)) & _M3
    v = (v | (v >> _U8)) & _M2
    v = (v | (v >> _U16)) & _M1
    v = (v | (v >> _U32)) & _M0
    return v


def morton_encode(x, y, z) -> np.ndarray:
    """Interleave integer coordinates into Morton keys.

    ``x`` occupies the least significant bit of each triple, matching the
    paper's (z, y, x) traversal order: z is the most significant axis.
    """
    return spread3(x) | (spread3(y) << _U1) | (spread3(z) << _U2)


def morton_decode(key) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover integer coordinates from Morton keys."""
    key = np.asarray(key).astype(np.uint64)
    x = compact3(key)
    y = compact3(key >> _U1)
    z = compact3(key >> _U2)
    return x.astype(np.int64), y.astype(np.int64), z.astype(np.int64)


def octant_length(level) -> np.ndarray:
    """Edge length in finest-cell units of an octant at ``level``."""
    level = np.asarray(level, dtype=np.int64)
    return np.int64(ROOT_LEN) >> level


def key_range_size(level) -> np.ndarray:
    """Number of finest-level Morton keys covered by an octant at ``level``.

    An octant anchored at key ``k`` with level ``l`` covers exactly the
    half-open key interval ``[k, k + key_range_size(l))``.
    """
    level = np.asarray(level, dtype=np.uint64)
    return np.uint64(1) << (np.uint64(3) * (np.uint64(MAX_LEVEL) - level))
