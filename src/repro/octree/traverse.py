"""Recursive partition-marker traversals (p4est-style, search-free).

The search-based parallel kernels (:func:`~repro.octree.partree.balance_tree`,
``collect_ghosts``) locate every neighbor by *sampling* candidate points
and binary-searching sorted Morton arrays, paying one query/reply
communication round (balance: one per propagated level).  Isaac,
Burstedde, Wilcox & Ghattas ("Recursive Algorithms for Distributed
Forests of Octrees") replace the sampling with top-down traversals of the
partition markers: because each rank owns a *contiguous* Morton-key
interval and no leaf straddles a marker, the set of ranks owning any
axis-aligned box of finest-level cells can be computed locally by
recursive bisection of the box — no communication at all.

This module provides those kernels for the single-octree case:

- :func:`box_owner_pairs` — all ``(item, rank)`` pairs such that ``rank``
  owns at least one finest cell of ``item``'s inclusive coordinate box.
  The recursion narrows the candidate rank range with the owners of the
  box's Morton-extreme corners and splits at the highest differing
  coordinate bit, so each box resolves in ``O(#ranks touched · levels)``.
- :func:`ghost_destinations` — for every local leaf, the remote ranks
  owning cells of its one-cell-dilated shell; by the marker-interval
  structure these are exactly the ranks owning a 26-adjacent leaf.
- :func:`balance_tree_recursive` — low-collective 2:1 balance: balance
  the local subtree with zero communication, then exchange boundary
  leaves with insulation-layer neighbors and re-balance until a single
  convergence allreduce reports a global fixed point (typically two
  exchanges, versus one alltoall round per propagated level for the
  ripple).

All kernels produce results bitwise identical to the search-based
implementations: ghost destination sets are *exact* adjacency (not an
over-approximation), and the 2:1 closure of a complete octree is unique,
so the recursive balance reaches the same leaf set as the ripple.
"""

from __future__ import annotations

import numpy as np

from .morton import ROOT_LEN, morton_encode
from .octants import OctantArray, directions_for
from .partree import ParTree, owners_of_keys, partition_markers

__all__ = [
    "box_owner_pairs",
    "dilated_boxes",
    "boundary_leaf_mask",
    "ghost_destinations",
    "balance_tree_recursive",
]


def _owners(markers: np.ndarray, keys: np.ndarray) -> np.ndarray:
    return np.searchsorted(markers[1:-1], keys, side="right").astype(np.int64)


def _msb(v: np.ndarray) -> np.ndarray:
    """Highest set bit position of each int64 (exact; -1 where v == 0)."""
    # frexp exponents are exact for values < 2**53; coordinates are < 2**22.
    return np.frexp(v.astype(np.float64))[1].astype(np.int64) - 1


def box_owner_pairs(
    lo: np.ndarray,
    hi: np.ndarray,
    items: np.ndarray,
    markers: np.ndarray,
    key_offsets: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All ``(item, rank)`` pairs such that ``rank`` owns >= 1 cell of the
    item's inclusive box ``[lo[i], hi[i]]`` (coordinates in cell units).

    ``key_offsets`` (uint64, per item) is OR-ed onto each Morton key —
    used by the forest layer to embed per-tree boxes in the composite
    ``(tree << 57) | reduced_key`` ordering.

    The Morton key is monotone along each axis, so the keys of a box's
    cells lie in ``[key(lo), key(hi)]`` and the owning ranks in
    ``[owner(key(lo)), owner(key(hi))]``.  Equal corner owners resolve a
    box immediately; otherwise the extreme owners are emitted (they own
    the corner cells) and, if any rank lies strictly between them, the box
    is split at the highest differing coordinate bit of its most
    Morton-significant axis and both halves recurse.  The loop below runs
    the recursion breadth-first over *all* boxes at once, so each level is
    a handful of vectorized array ops.
    """
    lo = np.asarray(lo, dtype=np.int64).reshape(-1, 3).copy()
    hi = np.asarray(hi, dtype=np.int64).reshape(-1, 3).copy()
    items = np.asarray(items, dtype=np.int64)
    if key_offsets is None:
        offs = np.zeros(len(items), dtype=np.uint64)
    else:
        offs = np.asarray(key_offsets, dtype=np.uint64).copy()
    out_items: list[np.ndarray] = []
    out_ranks: list[np.ndarray] = []
    while len(items):
        kmin = offs | morton_encode(lo[:, 0], lo[:, 1], lo[:, 2])
        kmax = offs | morton_encode(hi[:, 0], hi[:, 1], hi[:, 2])
        omin = _owners(markers, kmin)
        omax = _owners(markers, kmax)
        out_items.append(items)
        out_ranks.append(omin)
        ne = omax != omin
        if ne.any():
            out_items.append(items[ne])
            out_ranks.append(omax[ne])
        # only boxes with ranks strictly between the corner owners recurse
        split = omax > omin + 1
        if not split.any():
            break
        lo, hi, items, offs = lo[split], hi[split], items[split], offs[split]
        diff = lo ^ hi
        msb = _msb(diff)
        # Morton significance of axis a's bit b is 3*b + a (x interleaved
        # least significant); split the most significant differing bit.
        sig = np.where(diff > 0, 3 * msb + np.arange(3)[None, :], -1)
        ax = np.argmax(sig, axis=1)
        rows = np.arange(len(items))
        m = msb[rows, ax]
        sp = (hi[rows, ax] >> m) << m  # lowest hi-corner key with bit m set
        left_hi = hi.copy()
        left_hi[rows, ax] = sp - 1
        right_lo = lo.copy()
        right_lo[rows, ax] = sp
        lo = np.concatenate([lo, right_lo])
        hi = np.concatenate([left_hi, hi])
        items = np.concatenate([items, items])
        offs = np.concatenate([offs, offs])
    if not out_items:
        e = np.zeros(0, dtype=np.int64)
        return e, e.copy()
    it = np.concatenate(out_items)
    rk = np.concatenate(out_ranks)
    # dedup (item, rank) pairs, sorted by item then rank
    code = it * np.int64(len(markers)) + rk
    _, first = np.unique(code, return_index=True)
    return it[first], rk[first]


def dilated_boxes(octs: OctantArray, unit: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Inclusive coordinate boxes of each octant dilated by one ``unit``-
    sized cell on every side, clamped to the root cube, in units of
    ``unit`` finest cells.  (``unit=4`` gives the forest layer's reduced
    level-19 grid.)  A remote rank owns a leaf 26-adjacent to the octant
    iff it owns a cell of this box."""
    n = ROOT_LEN // unit
    x = octs.x // unit
    y = octs.y // unit
    z = octs.z // unit
    h = octs.lengths() // unit
    lo = np.stack([x, y, z], axis=1)
    hi = np.minimum(lo + h[:, None], n - 1)
    lo = np.maximum(lo - 1, 0)
    return lo, hi


def boundary_leaf_mask(
    lo: np.ndarray, hi: np.ndarray, markers: np.ndarray, rank: int
) -> np.ndarray:
    """Leaves whose dilated box may touch a remote rank's interval: both
    Morton-extreme corners owned locally means every box key is local, so
    the (cheap, vectorized) screen keeps only true partition-boundary
    leaves for the per-box recursion."""
    kmin = morton_encode(lo[:, 0], lo[:, 1], lo[:, 2])
    kmax = morton_encode(hi[:, 0], hi[:, 1], hi[:, 2])
    return (_owners(markers, kmin) != rank) | (_owners(markers, kmax) != rank)


def ghost_destinations(
    local: OctantArray, markers: np.ndarray, rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(leaf_idx, dest_rank)`` pairs: for each local leaf, every remote
    rank owning a leaf 26-adjacent to it (deduplicated, ``dest != rank``).

    A remote leaf M touches local leaf L iff M's owner owns one of the
    shell cells of L's one-cell-dilated box (leaves never straddle
    markers, so cell owner == owner of the containing leaf); conversely
    every cell of L itself is local, so the non-local owner set of the
    dilated box is exactly the 26-adjacent remote rank set.
    """
    if not len(local):
        e = np.zeros(0, dtype=np.int64)
        return e, e.copy()
    lo, hi = dilated_boxes(local)
    cand = np.flatnonzero(boundary_leaf_mask(lo, hi, markers, rank))
    it, rk = box_owner_pairs(lo[cand], hi[cand], cand, markers)
    remote = rk != rank
    return it[remote], rk[remote]


# --------------------------------------------------------------------------
# low-collective 2:1 balance


def _ripple_local(
    local: OctantArray,
    dirs: np.ndarray,
    klo: np.uint64,
    khi: np.uint64,
    extra: OctantArray | None,
) -> tuple[OctantArray, bool]:
    """Balance this rank's subtree against itself plus the (static) set of
    received remote boundary leaves, refining until a local fixed point.

    Marking rule is identical to the ripple's: the leaf containing the
    center of a source octant's same-size neighbor region refines when it
    is two or more levels coarser.  Only sample points inside this rank's
    key interval ``[klo, khi)`` are answered — out-of-range constraints
    are the sending side's job, delivered through ``extra``.
    """
    changed = False
    while True:
        srcs = local if extra is None else OctantArray.concat([local, extra])
        keys = local.keys()
        levels = local.level.astype(np.int64)
        mark = np.zeros(len(local), dtype=bool)
        h = srcs.lengths()
        slv = srcs.level.astype(np.int64)
        for d in dirs:
            nx, ny, nz, ok = srcs.neighbor_anchors(d)
            if not ok.any():
                continue
            pk = morton_encode(
                nx[ok] + h[ok] // 2, ny[ok] + h[ok] // 2, nz[ok] + h[ok] // 2
            )
            keep = (pk >= klo) & (pk < khi)
            if not keep.any():
                continue
            idx = np.searchsorted(keys, pk[keep], side="right") - 1
            viol = levels[idx] < slv[ok][keep] - 1
            mark[idx[viol]] = True
        if not mark.any():
            return local, changed
        kept = local[~mark]
        refined = local[mark].children()
        local = OctantArray.concat([kept, refined]).sort()
        changed = True


def balance_tree_recursive(
    pt: ParTree, connectivity: str = "edge", max_rounds: int = 64
) -> tuple[ParTree, int, int]:
    """Low-collective BALANCETREE: local recursive balance, then boundary
    insertion/merge rounds until a convergence allreduce fires.

    Balancing only refines in place, so partition markers are fixed for
    the whole call: one allgather up front, then per exchange one
    alltoall of boundary leaves plus one convergence allreduce — the
    ripple's per-round marker allgather and query/reply traffic are gone,
    and the exchange count is the insulation-propagation depth (almost
    always <= 2) instead of the number of propagated levels.

    Returns ``(tree, leaves_added, exchanges)`` — same tree, bitwise, as
    :func:`~repro.octree.partree.balance_tree` (the 2:1 closure is
    unique, and both algorithms apply only forced refinements).
    """
    comm = pt.comm
    dirs = directions_for(connectivity)
    local = pt.local
    n0 = comm.allreduce(len(local))
    markers = partition_markers(comm, local)
    klo, khi = markers[comm.rank], markers[comm.rank + 1]
    local, _ = _ripple_local(local, dirs, klo, khi, None)
    exchanges = 0
    while exchanges < max_rounds:
        idx, dst = ghost_destinations(local, markers, comm.rank)
        sendbufs = []
        for r in range(comm.size):  # lint: allow-loop (per-rank, not per-element)
            sel = idx[dst == r]
            buf = np.empty((len(sel), 4), dtype=np.int64)
            buf[:, 0] = local.x[sel]
            buf[:, 1] = local.y[sel]
            buf[:, 2] = local.z[sel]
            buf[:, 3] = local.level[sel]
            sendbufs.append(buf)
        recv = [b for b in comm.alltoall(sendbufs) if len(b)]
        exchanges += 1
        if recv:
            blk = np.concatenate(recv, axis=0)
            extra = OctantArray(blk[:, 0], blk[:, 1], blk[:, 2], blk[:, 3])
        else:
            extra = None
        local, changed = _ripple_local(local, dirs, klo, khi, extra)
        if not comm.allreduce(changed, op="lor"):
            break
    else:
        raise RuntimeError("recursive balance did not converge")
    out = ParTree(comm, local)
    added = comm.allreduce(len(local)) - n0
    return out, added, exchanges
