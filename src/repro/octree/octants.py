"""Vectorized octant arrays.

An *octant* is a cube in the unit root domain, identified by its integer
anchor coordinates (front-lower-left corner, in finest-cell units of
``2**-MAX_LEVEL``) and its refinement level.  :class:`OctantArray` stores
many octants in parallel NumPy arrays so that every tree operation in ALPS
(refine, coarsen, balance, partition, mesh extraction) is vectorized.

The canonical ordering is by Morton key, then by level — the pre-order
traversal of the octree shown in Figure 3 of the paper.
"""

from __future__ import annotations

import numpy as np

from .morton import MAX_LEVEL, ROOT_LEN, key_range_size, morton_encode

__all__ = ["OctantArray", "DIRECTIONS", "directions_for"]


def _child_offsets() -> np.ndarray:
    """(8, 3) array of child anchor offsets in units of the child length,
    ordered so children are visited in Morton order (x fastest)."""
    offs = np.empty((8, 3), dtype=np.int64)
    for i in range(8):
        offs[i] = (i & 1, (i >> 1) & 1, (i >> 2) & 1)
    return offs


_CHILD_OFFSETS = _child_offsets()

#: All 26 neighbor directions, grouped face (6), edge (12), corner (8).
DIRECTIONS = np.array(
    [
        (dx, dy, dz)
        for dz in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dx in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ],
    dtype=np.int64,
)


def directions_for(connectivity: str) -> np.ndarray:
    """Neighbor directions for a balance connectivity.

    ``"face"`` — 6 face neighbors; ``"edge"`` — faces + 12 edge neighbors
    (the paper's balance condition); ``"corner"`` — full 26-connectivity.
    """
    norms = np.abs(DIRECTIONS).sum(axis=1)
    if connectivity == "face":
        return DIRECTIONS[norms == 1]
    if connectivity == "edge":
        return DIRECTIONS[norms <= 2]
    if connectivity == "corner":
        return DIRECTIONS
    raise ValueError(f"unknown connectivity {connectivity!r}")


class OctantArray:
    """A set of octants stored as parallel arrays.

    Attributes
    ----------
    x, y, z:
        ``int64`` anchor coordinates in finest-cell units.
    level:
        ``int8`` refinement level, 0 (root) .. :data:`MAX_LEVEL`.
    """

    __slots__ = ("x", "y", "z", "level", "_keys")

    def __init__(self, x, y, z, level):
        self.x = np.ascontiguousarray(x, dtype=np.int64)
        self.y = np.ascontiguousarray(y, dtype=np.int64)
        self.z = np.ascontiguousarray(z, dtype=np.int64)
        self.level = np.ascontiguousarray(level, dtype=np.int8)
        if not (len(self.x) == len(self.y) == len(self.z) == len(self.level)):
            raise ValueError("coordinate arrays must have equal length")
        self._keys = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "OctantArray":
        z = np.zeros(0, dtype=np.int64)
        return cls(z, z, z, np.zeros(0, dtype=np.int8))

    @classmethod
    def root(cls) -> "OctantArray":
        return cls([0], [0], [0], [0])

    @classmethod
    def uniform(cls, level: int) -> "OctantArray":
        """All ``8**level`` octants of a uniformly refined root, in Morton
        order."""
        if not 0 <= level <= MAX_LEVEL:
            raise ValueError(f"level {level} out of range")
        n = 1 << level
        h = ROOT_LEN >> level
        # Build in Morton order directly by decoding sequential keys of the
        # level-sized lattice.
        idx = np.arange(n**3, dtype=np.uint64)
        from .morton import compact3

        x = compact3(idx).astype(np.int64) * h
        y = compact3(idx >> np.uint64(1)).astype(np.int64) * h
        z = compact3(idx >> np.uint64(2)).astype(np.int64) * h
        return cls(x, y, z, np.full(n**3, level, dtype=np.int8))

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, idx) -> "OctantArray":
        return OctantArray(self.x[idx], self.y[idx], self.z[idx], self.level[idx])

    def __repr__(self) -> str:
        lv = (
            f"levels {self.level.min()}..{self.level.max()}"
            if len(self)
            else "empty"
        )
        return f"OctantArray({len(self)} octants, {lv})"

    @staticmethod
    def concat(parts: list["OctantArray"]) -> "OctantArray":
        parts = [p for p in parts if len(p)]
        if not parts:
            return OctantArray.empty()
        return OctantArray(
            np.concatenate([p.x for p in parts]),
            np.concatenate([p.y for p in parts]),
            np.concatenate([p.z for p in parts]),
            np.concatenate([p.level for p in parts]),
        )

    def copy(self) -> "OctantArray":
        return OctantArray(self.x.copy(), self.y.copy(), self.z.copy(), self.level.copy())

    def equals(self, other: "OctantArray") -> bool:
        return (
            len(self) == len(other)
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.y, other.y)
            and np.array_equal(self.z, other.z)
            and np.array_equal(self.level, other.level)
        )

    # -- geometry ---------------------------------------------------------------

    def keys(self) -> np.ndarray:
        """Morton keys of the anchors (cached)."""
        if self._keys is None or len(self._keys) != len(self):
            self._keys = morton_encode(self.x, self.y, self.z)
        return self._keys

    def key_ranges(self) -> tuple[np.ndarray, np.ndarray]:
        """Half-open Morton key interval ``[start, end)`` of each octant."""
        start = self.keys()
        return start, start + key_range_size(self.level)

    def lengths(self) -> np.ndarray:
        """Edge lengths in finest-cell units."""
        return np.int64(ROOT_LEN) >> self.level.astype(np.int64)

    def centers(self) -> np.ndarray:
        """(N, 3) centers in the unit cube [0, 1]^3."""
        h = self.lengths()
        pts = np.stack(
            [self.x + h // 2, self.y + h // 2, self.z + h // 2], axis=1
        ).astype(np.float64)
        return pts / ROOT_LEN

    def corners_unit(self) -> np.ndarray:
        """(N, 8, 3) corner coordinates in the unit cube, vertex-ordered
        like the children (x fastest)."""
        h = self.lengths()
        anchors = np.stack([self.x, self.y, self.z], axis=1).astype(np.float64)
        out = anchors[:, None, :] + _CHILD_OFFSETS[None, :, :] * h[:, None, None]
        return out / ROOT_LEN

    def is_valid(self) -> bool:
        """Anchors aligned to their level and inside the root domain."""
        if len(self) == 0:
            return True
        if self.level.min() < 0 or self.level.max() > MAX_LEVEL:
            return False
        h = self.lengths()
        for c in (self.x, self.y, self.z):
            if c.min() < 0 or (c + h).max() > ROOT_LEN:
                return False
            if np.any(c % h != 0):
                return False
        return True

    # -- tree relations ------------------------------------------------------------

    def sort(self) -> "OctantArray":
        """Morton (pre-order traversal) sorted copy: by key, then level."""
        order = np.lexsort((self.level, self.keys()))
        return self[order]

    def parents(self) -> "OctantArray":
        """Parent of each octant (octants must not be at level 0)."""
        if len(self) and self.level.min() <= 0:
            raise ValueError("root octant has no parent")
        ph = np.int64(ROOT_LEN) >> (self.level.astype(np.int64) - 1)
        return OctantArray(
            self.x & ~(ph - 1), self.y & ~(ph - 1), self.z & ~(ph - 1), self.level - 1
        )

    def ancestors_at(self, level) -> "OctantArray":
        """Ancestor of each octant at the given (coarser or equal) level."""
        level = np.broadcast_to(np.asarray(level, dtype=np.int8), (len(self),))
        if np.any(level > self.level):
            raise ValueError("requested level finer than octant level")
        h = np.int64(ROOT_LEN) >> level.astype(np.int64)
        return OctantArray(
            self.x & ~(h - 1), self.y & ~(h - 1), self.z & ~(h - 1), level
        )

    def children(self) -> "OctantArray":
        """All 8 children of every octant, in Morton order, grouped by
        parent: result[8*i : 8*i+8] are the children of octant i."""
        if len(self) and self.level.max() >= MAX_LEVEL:
            raise ValueError("cannot refine past MAX_LEVEL")
        ch = np.int64(ROOT_LEN) >> (self.level.astype(np.int64) + 1)
        n = len(self)
        x = np.repeat(self.x, 8) + np.tile(_CHILD_OFFSETS[:, 0], n) * np.repeat(ch, 8)
        y = np.repeat(self.y, 8) + np.tile(_CHILD_OFFSETS[:, 1], n) * np.repeat(ch, 8)
        z = np.repeat(self.z, 8) + np.tile(_CHILD_OFFSETS[:, 2], n) * np.repeat(ch, 8)
        lv = np.repeat(self.level + 1, 8)
        return OctantArray(x, y, z, lv)

    def sibling_ids(self) -> np.ndarray:
        """Which of its parent's 8 children each octant is (Morton order)."""
        h = self.lengths()
        sx = (self.x // h) & 1
        sy = (self.y // h) & 1
        sz = (self.z // h) & 1
        return (sx + 2 * sy + 4 * sz).astype(np.int64)

    def neighbor_anchors(self, direction: np.ndarray) -> tuple[np.ndarray, ...]:
        """Anchor coordinates of the same-level neighbor in ``direction``
        (a length-3 int vector), plus a validity mask for domain bounds."""
        h = self.lengths()
        nx = self.x + direction[0] * h
        ny = self.y + direction[1] * h
        nz = self.z + direction[2] * h
        ok = (
            (nx >= 0) & (nx < ROOT_LEN)
            & (ny >= 0) & (ny < ROOT_LEN)
            & (nz >= 0) & (nz < ROOT_LEN)
        )
        return nx, ny, nz, ok
