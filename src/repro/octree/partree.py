"""Distributed linear octrees — the parallel ALPS tree functions.

Each rank owns a contiguous segment of the global Morton-ordered leaf
sequence (Figure 3).  The only global metadata any rank stores is one
Morton key per rank — the *partition markers* — obtained by an
``allgather``, exactly as described in Section IV-A ("the only global
information that is required to be stored is one long integer per core").

Implemented here, with the paper's names:

- :func:`new_tree` — NEWTREE: every rank grows the coarse uniform tree
  and prunes to its Morton segment (no communication).
- :func:`refine_tree` — completely local.
- :func:`coarsen_tree` — local for fully-owned families; families that
  straddle a partition marker are resolved with one exchange so the
  result is identical for every rank count.
- :func:`balance_tree` — BALANCETREE: parallel prioritized ripple
  propagation; one communication round per propagated level.
- :func:`partition_tree` — PARTITIONTREE: equal-count (or weighted)
  repartition along the space-filling curve via all-to-all; returns the
  routing plan that TRANSFERFIELDS reuses for element data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..parallel import SimComm
from .linear import LinearOctree
from .morton import MAX_LEVEL, key_range_size, morton_encode
from .octants import OctantArray, directions_for

__all__ = [
    "ParTree",
    "new_tree",
    "refine_tree",
    "coarsen_tree",
    "balance_tree",
    "partition_tree",
    "partition_markers",
    "owners_of_keys",
    "gather_tree",
    "TransferPlan",
]

_TOTAL_KEYS = np.uint64(1) << np.uint64(3 * MAX_LEVEL)


@dataclass
class ParTree:
    """One rank's view of the distributed octree."""

    comm: SimComm
    local: OctantArray  # sorted leaves of this rank's Morton segment

    def __len__(self) -> int:
        return len(self.local)

    @property
    def keys(self) -> np.ndarray:
        return self.local.keys()

    @property
    def levels(self) -> np.ndarray:
        return self.local.level

    def global_count(self) -> int:
        return self.comm.allreduce(len(self.local))

    def global_offset(self) -> int:
        return self.comm.exscan(len(self.local))

    def level_histogram(self) -> dict[int, int]:
        """Global leaves-per-level counts (collective)."""
        counts = np.zeros(MAX_LEVEL + 1, dtype=np.int64)
        lv, c = np.unique(self.local.level, return_counts=True)
        counts[lv.astype(np.int64)] = c
        total = self.comm.allreduce(counts)
        return {int(i): int(n) for i, n in enumerate(total) if n > 0}


def partition_markers(comm: SimComm, local: OctantArray) -> np.ndarray:
    """Allgather the partition boundary keys.

    Returns ``m`` of length ``P + 1`` with ``m[0] = 0`` and
    ``m[P] = 8**MAX_LEVEL``; rank ``r`` owns exactly the keys in
    ``[m[r], m[r+1])``.  Ranks with no leaves own an empty interval.
    """
    first = int(local.keys()[0]) if len(local) else -1
    firsts = comm.allgather(first)
    p = comm.size
    m = np.empty(p + 1, dtype=np.uint64)
    m[p] = _TOTAL_KEYS
    for r in range(p - 1, -1, -1):
        m[r] = np.uint64(firsts[r]) if firsts[r] >= 0 else m[r + 1]
    m[0] = np.uint64(0)
    return m


def owners_of_keys(markers: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Owning rank of each finest-level Morton key."""
    keys = np.asarray(keys, dtype=np.uint64)
    return np.searchsorted(markers[1:-1], keys, side="right").astype(np.int64)


def new_tree(comm: SimComm, coarse_level: int) -> ParTree:
    """NEWTREE: build the uniform tree at ``coarse_level`` and keep this
    rank's equal share of the Morton-ordered leaves (no communication)."""
    full = OctantArray.uniform(coarse_level)
    n = len(full)
    base, rem = divmod(n, comm.size)
    lo = comm.rank * base + min(comm.rank, rem)
    hi = lo + base + (1 if comm.rank < rem else 0)
    return ParTree(comm, full[lo:hi])


def refine_tree(pt: ParTree, mask: np.ndarray) -> ParTree:
    """REFINETREE: replace marked local leaves by their children (local)."""
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        return pt
    kept = pt.local[~mask]
    refined = pt.local[mask].children()
    return ParTree(pt.comm, OctantArray.concat([kept, refined]).sort())


def coarsen_tree(pt: ParTree, mask: np.ndarray) -> tuple[ParTree, int]:
    """COARSENTREE: coarsen complete families of 8 marked sibling leaves.

    Fully-local families merge without communication.  Families whose
    eight siblings straddle a partition marker are resolved with one
    aggregate/decide/notify exchange: each rank reports its share of any
    marker-crossing candidate parent to the parent's owner; the owner
    accepts the family iff exactly eight marked same-level leaves tile
    the parent over all contributions; contributors then drop their
    siblings and the owner inserts the parent.  (The paper skips split
    families as "a minor restriction", but that makes the coarsened tree
    depend on where the markers fall — rank-count invariance and restart
    determinism require resolving them; see DESIGN.md section 4e.)
    """
    comm = pt.comm
    mask = np.asarray(mask, dtype=bool)
    lt = LinearOctree(pt.local, presorted=True)
    new_lt, nfam = lt.coarsen(mask)
    if comm.size == 1:
        return ParTree(comm, new_lt.leaves), nfam

    # -- candidates whose parent key range crosses a partition marker
    local = pt.local
    keys = local.keys()
    levels = local.level.astype(np.int64)
    markers = partition_markers(comm, local)
    lo, hi = markers[comm.rank], markers[comm.rank + 1]

    cand = mask & (levels > 0)
    shift = np.uint64(3) * (
        np.uint64(MAX_LEVEL) - levels.astype(np.uint64) + np.uint64(1)
    )
    pkey = (keys >> shift) << shift
    plen = key_range_size(np.maximum(levels - 1, 0))
    spanning = cand & ((pkey < lo) | (pkey + plen > hi))

    pk, pl = pkey[spanning], levels[spanning]
    if len(pk):
        uniq = np.unique(np.stack([pk, pl.astype(np.uint64)], axis=1), axis=0)
        pk, pl = uniq[:, 0], uniq[:, 1].astype(np.int64)
    # a marker is crossed by at most one ancestor per level, so there are
    # O(MAX_LEVEL) candidates per rank — plain loops are fine here
    send = [np.empty((0, 4), dtype=np.uint64) for _ in range(comm.size)]
    for p, l in zip(pk, pl):
        end = p + key_range_size(l - 1)
        i0 = int(np.searchsorted(keys, p, side="left"))
        i1 = int(np.searchsorted(keys, end, side="left"))
        nm = int(np.count_nonzero(mask[i0:i1] & (levels[i0:i1] == l)))
        dest = int(owners_of_keys(markers, np.asarray([p], dtype=np.uint64))[0])
        row = np.array(
            [[p, np.uint64(l), np.uint64(i1 - i0), np.uint64(nm)]], dtype=np.uint64
        )
        send[dest] = np.concatenate([send[dest], row])
    recv = comm.alltoallv_arrays(send)

    # -- owner decides: coarsen iff 8 marked level-l leaves tile the parent.
    # Ranks holding only unmarked/deeper leaves inside the parent do not
    # report, but that only loses counts: an accepted family's eight
    # reported leaves already tile the parent, so nothing can be missing.
    rows = (
        np.concatenate(recv, axis=0)
        if any(len(r) for r in recv)
        else np.empty((0, 4), dtype=np.uint64)
    )
    src = (
        np.concatenate([np.full(len(r), j, dtype=np.int64) for j, r in enumerate(recv)])
        if len(rows)
        else np.empty(0, dtype=np.int64)
    )
    reply = [np.empty((0, 2), dtype=np.uint64) for _ in range(comm.size)]
    accepted = np.empty(0, dtype=np.uint64)
    if len(rows):
        order = np.lexsort((rows[:, 1], rows[:, 0]))
        rows, src = rows[order], src[order]
        newgrp = np.ones(len(rows), dtype=bool)
        newgrp[1:] = (rows[1:, 0] != rows[:-1, 0]) | (rows[1:, 1] != rows[:-1, 1])
        gid = np.cumsum(newgrp) - 1
        nt_tot = np.bincount(gid, weights=rows[:, 2].astype(np.float64))
        nm_tot = np.bincount(gid, weights=rows[:, 3].astype(np.float64))
        ok = (nt_tot == 8) & (nm_tot == 8)
        hit = ok[gid]
        for j in range(comm.size):
            sel = hit & (src == j)
            reply[j] = rows[sel][:, :2].copy()
        starts = np.flatnonzero(newgrp)
        accepted = rows[starts[ok], 0]
    dec = comm.alltoallv_arrays(reply)

    # -- apply: drop local siblings of accepted families, owner inserts parent
    drops = (
        np.concatenate(dec, axis=0)
        if any(len(d) for d in dec)
        else np.empty((0, 2), dtype=np.uint64)
    )
    leaves = new_lt.leaves
    if len(drops) or len(accepted):
        k2 = new_lt.keys
        keep = np.ones(len(k2), dtype=bool)
        for p, l in drops:
            end = p + key_range_size(int(l) - 1)
            i0 = int(np.searchsorted(k2, p, side="left"))
            i1 = int(np.searchsorted(k2, end, side="left"))
            keep[i0:i1] = False
        parts = [leaves[keep]]
        if len(accepted):
            # the parent anchor key is the first child's key, which this
            # rank owns — locate it and promote to the parent octant
            fidx = np.searchsorted(keys, accepted, side="left")
            if not np.array_equal(keys[fidx], accepted):
                raise AssertionError("first sibling of accepted family not local")
            parts.append(local[fidx].parents())
        leaves = LinearOctree(OctantArray.concat(parts)).leaves
    return ParTree(comm, leaves), nfam + len(accepted)


def _local_find(local: OctantArray, pkeys: np.ndarray) -> np.ndarray:
    """Containing-leaf index among this rank's leaves; the caller routes
    keys to owners first, so every query hits (asserted)."""
    idx = np.searchsorted(local.keys(), pkeys, side="right") - 1
    return idx


def balance_tree(
    pt: ParTree,
    connectivity: str = "edge",
    max_rounds: int = 64,
    algorithm: str = "search",
) -> tuple[ParTree, int, int]:
    """BALANCETREE: parallel prioritized ripple propagation.

    Each round: every leaf samples the centers of its same-size neighbor
    regions; queries owned locally are answered locally, the rest are
    routed to their owning rank with one all-to-all (this aggregation of
    requests is the paper's communication buffering — rounds scale with
    the number of refinement levels, not with the number of leaves).  A
    leaf at least two levels coarser than a querying neighbor is refined.
    Terminates when a global fixed point is reached.

    ``algorithm="recursive"`` switches to the low-collective variant of
    :mod:`repro.octree.traverse` (same tree, bitwise; the third return
    value then counts boundary exchanges instead of ripple rounds).

    Returns ``(tree, leaves_added, rounds)``.
    """
    if algorithm == "recursive":
        from .traverse import balance_tree_recursive

        return balance_tree_recursive(pt, connectivity, max_rounds)
    if algorithm != "search":
        raise ValueError(f"unknown balance algorithm {algorithm!r}")
    comm = pt.comm
    dirs = directions_for(connectivity)
    local = pt.local
    n0_global = comm.allreduce(len(local))
    rounds = 0
    while rounds < max_rounds:
        markers = partition_markers(comm, local)
        h = local.lengths()
        levels = local.level.astype(np.int64)
        all_pk = []
        all_lv = []
        for d in dirs:
            nx, ny, nz, ok = local.neighbor_anchors(d)
            if not ok.any():
                continue
            pk = morton_encode(nx[ok] + h[ok] // 2, ny[ok] + h[ok] // 2, nz[ok] + h[ok] // 2)
            all_pk.append(pk)
            all_lv.append(levels[ok])
        if all_pk:
            pkeys = np.concatenate(all_pk)
            plevels = np.concatenate(all_lv)
        else:
            pkeys = np.zeros(0, dtype=np.uint64)
            plevels = np.zeros(0, dtype=np.int64)
        owners = owners_of_keys(markers, pkeys)
        # Route queries: keep local ones, alltoall the rest.
        sendbufs = []
        for r in range(comm.size):
            sel = owners == r
            buf = np.empty((int(sel.sum()), 2), dtype=np.uint64)
            buf[:, 0] = pkeys[sel]
            buf[:, 1] = plevels[sel].astype(np.uint64)
            sendbufs.append(buf)
        recv = comm.alltoall(sendbufs)
        mark = np.zeros(len(local), dtype=bool)
        for buf in recv:
            if len(buf) == 0:
                continue
            qk = buf[:, 0]
            ql = buf[:, 1].astype(np.int64)
            idx = _local_find(local, qk)
            viol = local.level[idx].astype(np.int64) < ql - 1
            mark[idx[viol]] = True
        changed = comm.allreduce(bool(mark.any()), op="lor")
        if mark.any():
            kept = local[~mark]
            refined = local[mark].children()
            local = OctantArray.concat([kept, refined]).sort()
        rounds += 1
        if not changed:
            break
    else:
        raise RuntimeError("parallel balance did not converge")
    out = ParTree(comm, local)
    added = comm.allreduce(len(local)) - n0_global
    return out, added, rounds


@dataclass
class TransferPlan:
    """Routing produced by PARTITIONTREE, reused by TRANSFERFIELDS.

    ``send_slices[r] = (lo, hi)`` — the local element index range (in the
    pre-partition Morton order) shipped to rank ``r``.  Because the global
    Morton order is preserved, concatenating received blocks in rank order
    yields data aligned with the post-partition local element order.
    """

    send_slices: list[tuple[int, int]]
    n_new_local: int

    def transfer(self, comm: SimComm, element_data: np.ndarray) -> np.ndarray:
        """TRANSFERFIELDS for per-element data: route rows of
        ``element_data`` (first axis = old local elements) to the new
        owners and return the new local block."""
        parts = [element_data[lo:hi] for lo, hi in self.send_slices]
        recv = comm.alltoall(parts)
        recv = [p for p in recv if len(p)]
        if not recv:
            return element_data[:0]
        return np.concatenate(recv, axis=0)


def partition_tree(
    pt: ParTree, weights: np.ndarray | None = None
) -> tuple[ParTree, TransferPlan]:
    """PARTITIONTREE: repartition the space-filling curve for load balance.

    With ``weights=None`` each rank receives an equal share of the global
    leaf count; otherwise the curve is cut at equal cumulative weight.
    Completely redistributes the tree with one all-to-all (the paper notes
    no explicit penalty is placed on data movement).
    """
    comm = pt.comm
    n_local = len(pt.local)
    if weights is None:
        offset, total = comm.global_offsets(n_local)
        p = comm.size
        base, rem = divmod(total, p)
        # Destination of global index g.
        tgt_starts = np.array(
            [r * base + min(r, rem) for r in range(p + 1)], dtype=np.int64
        )
        gidx = offset + np.arange(n_local, dtype=np.int64)
        dest = np.searchsorted(tgt_starts[1:], gidx, side="right")
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n_local,):
            raise ValueError("weights length mismatch")
        my_sum = w.sum()
        prev = comm.exscan(my_sum)
        total_w = comm.allreduce(my_sum)
        cum = prev + np.cumsum(w) - w  # cumulative weight before each leaf
        p = comm.size
        cuts = total_w * np.arange(1, p, dtype=np.float64) / p
        dest = np.searchsorted(cuts, cum, side="right")
    # dest is nondecreasing; build contiguous slices per destination.
    send_slices = []
    for r in range(comm.size):
        lo = int(np.searchsorted(dest, r, side="left"))
        hi = int(np.searchsorted(dest, r, side="right"))
        send_slices.append((lo, hi))
    packed = np.empty((n_local, 4), dtype=np.int64)
    packed[:, 0] = pt.local.x
    packed[:, 1] = pt.local.y
    packed[:, 2] = pt.local.z
    packed[:, 3] = pt.local.level
    recv = comm.alltoall([packed[lo:hi] for lo, hi in send_slices])
    recv = [b for b in recv if len(b)]
    if recv:
        blk = np.concatenate(recv, axis=0)
    else:
        blk = packed[:0]
    new_local = OctantArray(blk[:, 0], blk[:, 1], blk[:, 2], blk[:, 3])
    plan = TransferPlan(send_slices=send_slices, n_new_local=len(new_local))
    return ParTree(comm, new_local), plan


def gather_tree(pt: ParTree) -> LinearOctree:
    """Collect the full tree on every rank (verification/testing only)."""
    comm = pt.comm
    packed = np.empty((len(pt.local), 4), dtype=np.int64)
    packed[:, 0] = pt.local.x
    packed[:, 1] = pt.local.y
    packed[:, 2] = pt.local.z
    packed[:, 3] = pt.local.level
    parts = comm.allgather(packed)
    blk = np.concatenate([p for p in parts if len(p)], axis=0)
    return LinearOctree(
        OctantArray(blk[:, 0], blk[:, 1], blk[:, 2], blk[:, 3]), presorted=True
    )
