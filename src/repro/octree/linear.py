"""Linear octrees: complete, sorted leaf sets.

The paper's octrees are stored *linearly* — only the leaves, sorted along
the Morton space-filling curve (Figure 3).  Parent/child relations are
implicit in the keys.  A linear octree over the root domain is *complete*
when its leaves tile the root exactly, which is equivalent to the sorted
key intervals ``[key_i, key_i + range_i)`` partitioning
``[0, 8**MAX_LEVEL)`` without gaps or overlaps.

:class:`LinearOctree` maintains this invariant through refinement and
coarsening, and supports the point-location queries (``find_containing``)
that the balance and mesh-extraction algorithms are built on.
"""

from __future__ import annotations

import numpy as np

from .morton import MAX_LEVEL, key_range_size, morton_encode
from .octants import OctantArray

__all__ = ["LinearOctree", "complete_from"]


def complete_from(seeds: OctantArray) -> "LinearOctree":
    """Build the minimal complete octree containing the given octants as
    leaves (p4est's ``complete`` operation, used to seed trees from
    scattered refinement requests).

    ``seeds`` must be pairwise non-overlapping.  Starting from the root,
    every leaf that strictly contains a deeper seed is split; the result
    is complete, contains every seed as a leaf, and is minimal.
    """
    if len(seeds) == 0:
        return LinearOctree.uniform(0)
    seeds = seeds.sort()
    skeys = seeds.keys()
    send = skeys + key_range_size(seeds.level)
    # overlap check: sorted intervals must be disjoint
    if np.any(send[:-1] > skeys[1:]):
        raise ValueError("seed octants overlap")
    tree = LinearOctree(OctantArray.root(), presorted=True)
    for _ in range(MAX_LEVEL + 1):
        lkeys = tree.keys
        lend = lkeys + key_range_size(tree.levels)
        # for each leaf: is there a seed strictly inside it (deeper level)?
        lo = np.searchsorted(skeys, lkeys, side="left")
        hi = np.searchsorted(skeys, lend, side="left")
        has_seed = hi > lo
        safe_lo = np.clip(lo, 0, len(seeds) - 1)
        deeper = seeds.level[safe_lo].astype(np.int64) > tree.levels.astype(np.int64)
        # splitting is needed when the first contained seed is deeper than
        # the leaf; when the seed *equals* the leaf, it is already a leaf
        split = has_seed & deeper
        if not split.any():
            return tree
        tree = tree.refine(split)
    raise AssertionError("complete_from did not terminate")

_TOTAL_KEYS = np.uint64(1) << np.uint64(3 * MAX_LEVEL)


class LinearOctree:
    """A complete linear octree (sorted leaf set over the whole root).

    Parameters
    ----------
    leaves:
        The leaf octants.  Sorted on construction; completeness can be
        checked with :meth:`is_complete` (constructors preserve it).
    """

    def __init__(self, leaves: OctantArray, *, presorted: bool = False):
        self.leaves = leaves if presorted else leaves.sort()

    # -- constructors -----------------------------------------------------------

    @classmethod
    def uniform(cls, level: int) -> "LinearOctree":
        """Uniformly refined tree with ``8**level`` leaves."""
        return cls(OctantArray.uniform(level), presorted=True)

    # -- basic properties ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.leaves)

    def __repr__(self) -> str:
        return f"LinearOctree({self.leaves!r})"

    @property
    def keys(self) -> np.ndarray:
        return self.leaves.keys()

    @property
    def levels(self) -> np.ndarray:
        return self.leaves.level

    def is_complete(self) -> bool:
        """Do the leaves tile the root domain exactly?"""
        if len(self) == 0:
            return False
        start, end = self.leaves.key_ranges()
        if start[0] != 0 or end[-1] != _TOTAL_KEYS:
            return False
        return bool(np.all(end[:-1] == start[1:]))

    def level_histogram(self) -> dict[int, int]:
        """Number of leaves per refinement level (Figure 5, right panel)."""
        lv, counts = np.unique(self.levels, return_counts=True)
        return {int(a): int(b) for a, b in zip(lv, counts)}

    # -- queries ------------------------------------------------------------------

    def find_containing_keys(self, point_keys: np.ndarray) -> np.ndarray:
        """Index of the leaf containing each finest-level Morton key.

        Relies on completeness: every key in ``[0, 8**MAX_LEVEL)`` lies in
        exactly one leaf's key interval.
        """
        point_keys = np.asarray(point_keys, dtype=np.uint64)
        idx = np.searchsorted(self.keys, point_keys, side="right") - 1
        return idx

    def find_containing(self, px, py, pz) -> np.ndarray:
        """Index of the leaf containing each integer point."""
        return self.find_containing_keys(morton_encode(px, py, pz))

    def contains_points(self, idx: np.ndarray, pkeys: np.ndarray) -> np.ndarray:
        """Verify that leaf ``idx`` actually covers key ``pkeys`` (used on
        partial/distributed trees where completeness is only global)."""
        ok = idx >= 0
        safe = np.where(ok, idx, 0)
        start = self.keys[safe]
        end = start + key_range_size(self.levels[safe])
        return ok & (pkeys >= start) & (pkeys < end)

    # -- adaptation ------------------------------------------------------------------

    def refine(self, mask: np.ndarray) -> "LinearOctree":
        """Replace each marked leaf by its 8 children.

        The result stays sorted and complete: children of a leaf are
        contiguous in Morton order exactly where the parent was.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length mismatch")
        if not mask.any():
            return self
        kept = self.leaves[~mask]
        refined = self.leaves[mask].children()
        return LinearOctree(OctantArray.concat([kept, refined]))

    def coarsen(self, mask: np.ndarray) -> tuple["LinearOctree", int]:
        """Replace complete families of 8 marked sibling leaves by their
        parent.  Returns the new tree and the number of families coarsened.

        Families are only coarsened when *all eight* siblings are leaves
        and marked (same rule as COARSENTREE in the paper).
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length mismatch")
        coarsenable = mask & (self.levels > 0)
        if not coarsenable.any():
            return self, 0
        # In a sorted complete tree, the 8 siblings of a family occupy 8
        # consecutive positions.  Find positions i where leaves[i..i+8) are
        # all marked, at equal level, and share a parent anchor.
        n = len(self)
        keys = self.keys
        levels = self.levels.astype(np.int64)
        # Parent key: clear the low 3*(MAX_LEVEL - level + 1) bits.
        shift = (np.uint64(3) * (np.uint64(MAX_LEVEL) - levels.astype(np.uint64) + np.uint64(1)))
        parent_key = (keys >> shift) << shift
        # Candidate family starts: first child (sibling id 0).
        sib = self.leaves.sibling_ids()
        starts = np.flatnonzero((sib == 0) & coarsenable & (np.arange(n) + 8 <= n))
        if len(starts) == 0:
            return self, 0
        offs = np.arange(8)
        block = starts[:, None] + offs[None, :]
        good = np.all(coarsenable[block], axis=1)
        good &= np.all(levels[block] == levels[starts][:, None], axis=1)
        good &= np.all(parent_key[block] == parent_key[starts][:, None], axis=1)
        starts = starts[good]
        if len(starts) == 0:
            return self, 0
        family_members = (starts[:, None] + offs[None, :]).ravel()
        keep = np.ones(n, dtype=bool)
        keep[family_members] = False
        parents = self.leaves[starts].parents()
        tree = LinearOctree(OctantArray.concat([self.leaves[keep], parents]))
        return tree, len(starts)

    def refine_by(self, flags: np.ndarray) -> "LinearOctree":
        """Repeatedly refine until ``flags`` levels are reached: ``flags``
        gives for each ORIGINAL leaf a target minimum level; convenience
        used by tests and examples."""
        tree = self
        target = np.asarray(flags, dtype=np.int64)
        # Re-evaluate the target by point lookup each round.
        centers = (self.leaves.x + self.leaves.lengths() // 2,
                   self.leaves.y + self.leaves.lengths() // 2,
                   self.leaves.z + self.leaves.lengths() // 2)
        for _ in range(MAX_LEVEL):
            idx = np.searchsorted(tree.keys, morton_encode(*centers), side="right") - 1
            want = np.zeros(len(tree), dtype=np.int64)
            np.maximum.at(want, idx, target)
            mask = tree.levels < want
            if not mask.any():
                break
            tree = tree.refine(mask)
        return tree
