"""Octree substrate: Morton-ordered linear octrees, serial and distributed.

This package implements the data structures of Section IV of the paper:
Morton space-filling-curve keys (:mod:`.morton`), vectorized octant arrays
(:mod:`.octants`), complete linear octrees with refinement/coarsening
(:mod:`.linear`), serial 2:1 balance (:mod:`.balance`), and the distributed
tree with the parallel ALPS functions NEWTREE / REFINETREE / COARSENTREE /
BALANCETREE / PARTITIONTREE (:mod:`.partree`).
"""

from .balance import BalanceResult, balance, balance_violations, is_balanced
from .linear import LinearOctree, complete_from
from .morton import (
    MAX_LEVEL,
    ROOT_LEN,
    key_range_size,
    morton_decode,
    morton_encode,
    octant_length,
)
from .faces import merge_lookup, row_lookup
from .octants import DIRECTIONS, OctantArray, directions_for
from .partree import (
    ParTree,
    TransferPlan,
    balance_tree,
    coarsen_tree,
    gather_tree,
    new_tree,
    owners_of_keys,
    partition_markers,
    partition_tree,
    refine_tree,
)
from .traverse import (
    balance_tree_recursive,
    boundary_leaf_mask,
    box_owner_pairs,
    dilated_boxes,
    ghost_destinations,
)

__all__ = [
    "MAX_LEVEL",
    "ROOT_LEN",
    "morton_encode",
    "morton_decode",
    "key_range_size",
    "octant_length",
    "OctantArray",
    "DIRECTIONS",
    "directions_for",
    "LinearOctree",
    "complete_from",
    "balance",
    "is_balanced",
    "balance_violations",
    "BalanceResult",
    "ParTree",
    "TransferPlan",
    "new_tree",
    "refine_tree",
    "coarsen_tree",
    "balance_tree",
    "partition_tree",
    "partition_markers",
    "owners_of_keys",
    "gather_tree",
    "box_owner_pairs",
    "dilated_boxes",
    "boundary_leaf_mask",
    "ghost_destinations",
    "balance_tree_recursive",
    "merge_lookup",
    "row_lookup",
]
