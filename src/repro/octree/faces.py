"""Sort-merge join kernels for face iteration and node lookup.

The original mesh-extraction and DG face code locate counterparts by
per-candidate binary search (``searchsorted`` probes against a sorted key
array, one probe per candidate).  These kernels replace that with single
stable merge joins in the style of p4est's recursive ``iterate``: sort
once, sweep once, answer every candidate in the same pass.  Both return
exactly the probe results (-1 for misses), so callers are bitwise
interchangeable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["merge_lookup", "row_lookup"]


def merge_lookup(
    keys_sorted: np.ndarray, key_sorter: np.ndarray, cand: np.ndarray
) -> np.ndarray:
    """Index (into the original unsorted key array) of each candidate
    key, or -1 where absent.

    ``keys_sorted = keys[key_sorter]`` must be strictly increasing
    (unique keys); ``cand`` may repeat and be unsorted.  One stable
    argsort of the concatenation puts each candidate directly after its
    key (keys win ties because they come first), so a running maximum of
    key positions answers every lookup without per-candidate probes.
    """
    out = np.full(len(cand), -1, dtype=np.int64)
    if len(cand) == 0 or len(keys_sorted) == 0:
        return out
    n = len(keys_sorted)
    order = np.argsort(np.concatenate([keys_sorted, cand]), kind="stable")
    is_key = order < n
    last = np.maximum.accumulate(np.where(is_key, order, -1))
    cslot = np.flatnonzero(~is_key)
    cidx = order[cslot] - n
    li = last[cslot]
    lic = np.maximum(li, 0)
    hit = (li >= 0) & (keys_sorted[lic] == cand[cidx])
    out[cidx[hit]] = key_sorter[li[hit]]
    return out


def row_lookup(a_cols: tuple, b_cols: tuple) -> np.ndarray:
    """For each row of table A (a tuple of equal-length integer columns),
    the index of the equal row in table B, or -1.

    B's rows must be unique (each A row matches at most one).  A single
    lexsort of the stacked tables — B rows first, so stability puts a B
    row directly before its equal A rows — turns the join into one sweep.
    """
    na = len(a_cols[0])
    nb = len(b_cols[0])
    out = np.full(na, -1, dtype=np.int64)
    if na == 0 or nb == 0:
        return out
    cols = [
        np.concatenate([np.asarray(b), np.asarray(a)])
        for a, b in zip(a_cols, b_cols)
    ]
    order = np.lexsort(tuple(cols[::-1]))  # cols[0] is the primary key
    is_b = order < nb
    # latest B row seen at each merged position: track the *slot* in the
    # merged order (monotone), not the B row index (B is unsorted)
    slots = np.arange(len(order), dtype=np.int64)
    last = np.maximum.accumulate(np.where(is_b, slots, -1))
    aslot = np.flatnonzero(~is_b)
    aidx = order[aslot] - nb
    ls = last[aslot]
    hit = ls >= 0
    li = np.zeros(len(ls), dtype=np.int64)
    li[hit] = order[ls[hit]]
    for a, b in zip(a_cols, b_cols):
        hit &= np.asarray(b)[li] == np.asarray(a)[aidx]
    out[aidx[hit]] = li[hit]
    return out
