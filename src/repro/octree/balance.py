"""2:1 balance enforcement (serial BALANCETREE).

The paper maintains a *global 2-to-1 balance condition*: edge lengths of
face- and edge-neighboring elements may differ by at most a factor of two.
This module enforces it by ripple propagation — each round marks every
leaf that is more than one level coarser than some neighbor, refines the
marked set by one level, and repeats until a fixed point.  The number of
rounds is bounded by the number of refinement levels, mirroring the
communication-round bound of the parallel algorithm.

The neighbor test uses the Morton interval structure: the center of the
same-size neighbor region in direction ``d`` lies inside exactly one leaf
(completeness), found by binary search; if that leaf is at least two
levels coarser it violates balance and must refine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .linear import LinearOctree
from .octants import directions_for

__all__ = ["balance", "is_balanced", "balance_violations", "BalanceResult"]


@dataclass
class BalanceResult:
    """Outcome of BALANCETREE: the balanced tree plus bookkeeping used by
    the Figure-5 reproduction ('Added by BalanceTree')."""

    tree: LinearOctree
    leaves_added: int
    rounds: int


def _violating_leaf_marks(tree: LinearOctree, dirs: np.ndarray) -> np.ndarray:
    """Mark leaves that are >= 2 levels coarser than a neighboring leaf."""
    leaves = tree.leaves
    h = leaves.lengths()
    mark = np.zeros(len(tree), dtype=bool)
    levels = tree.levels.astype(np.int64)
    for d in dirs:
        nx, ny, nz, ok = leaves.neighbor_anchors(d)
        if not ok.any():
            continue
        px = nx[ok] + h[ok] // 2
        py = ny[ok] + h[ok] // 2
        pz = nz[ok] + h[ok] // 2
        idx = tree.find_containing(px, py, pz)
        viol = levels[idx] < levels[ok] - 1
        mark[idx[viol]] = True
    return mark


def balance(
    tree: LinearOctree, connectivity: str = "edge", max_rounds: int | None = None
) -> BalanceResult:
    """Refine ``tree`` minimally until it satisfies 2:1 balance.

    Parameters
    ----------
    tree:
        A complete linear octree.
    connectivity:
        ``"face"``, ``"edge"`` (paper default) or ``"corner"``.
    """
    dirs = directions_for(connectivity)
    n0 = len(tree)
    rounds = 0
    limit = max_rounds if max_rounds is not None else 64
    while rounds < limit:
        mark = _violating_leaf_marks(tree, dirs)
        if not mark.any():
            break
        tree = tree.refine(mark)
        rounds += 1
    else:
        raise RuntimeError("balance did not converge")
    return BalanceResult(tree=tree, leaves_added=len(tree) - n0, rounds=rounds)


def balance_violations(tree: LinearOctree, connectivity: str = "edge") -> int:
    """Number of leaves violating the 2:1 condition (0 when balanced)."""
    dirs = directions_for(connectivity)
    return int(_violating_leaf_marks(tree, dirs).sum())


def is_balanced(tree: LinearOctree, connectivity: str = "edge") -> bool:
    """Check the 2:1 balance condition of a complete tree."""
    return balance_violations(tree, connectivity) == 0
