"""Forest of octrees (the P4EST core, Section VII).

A forest holds one complete linear octree per tree of a
:class:`~repro.forest.connectivity.Connectivity`.  The global leaf order
is (tree id, Morton key) — the z-order curve threaded tree by tree — which
is what partitioning cuts into equal segments.

2:1 balance is enforced with the same ripple propagation as the single
octree, extended across trees: neighbor sample points that leave a tree
through a face are transformed into the adjacent tree's coordinate system
with the exact lattice transforms of the connectivity and marked there.
Within trees the full (face/edge/corner) condition is enforced; across
trees the face condition is (the one the DG face integration requires).
"""

from __future__ import annotations

import numpy as np

from ..octree import LinearOctree, ROOT_LEN
from ..octree.balance import _violating_leaf_marks
from ..octree.octants import directions_for
from .connectivity import Connectivity

__all__ = ["Forest"]


class Forest:
    """A complete forest: one :class:`LinearOctree` per connectivity tree."""

    def __init__(self, conn: Connectivity, trees: list[LinearOctree]):
        if len(trees) != conn.n_trees:
            raise ValueError("one octree per connectivity tree required")
        self.conn = conn
        self.trees = trees

    # -- constructors ----------------------------------------------------------

    @classmethod
    def uniform(cls, conn: Connectivity, level: int) -> "Forest":
        return cls(conn, [LinearOctree.uniform(level) for _ in range(conn.n_trees)])

    # -- flat views ----------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(t) for t in self.trees)

    @property
    def n_trees(self) -> int:
        return self.conn.n_trees

    def tree_offsets(self) -> np.ndarray:
        """Start index of each tree's leaves in the flat global order."""
        return np.concatenate([[0], np.cumsum([len(t) for t in self.trees])])

    def leaf_tree_ids(self) -> np.ndarray:
        return np.repeat(np.arange(self.n_trees), [len(t) for t in self.trees])

    def flat_levels(self) -> np.ndarray:
        return np.concatenate([t.levels for t in self.trees])

    def level_histogram(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for t in self.trees:
            for lvl, n in t.level_histogram().items():
                out[lvl] = out.get(lvl, 0) + n
        return out

    def is_complete(self) -> bool:
        return all(t.is_complete() for t in self.trees)

    def leaf_centers(self) -> np.ndarray:
        """(n, 3) physical leaf centers through the tree geometry maps."""
        parts = []
        for tid, t in enumerate(self.trees):
            parts.append(self.conn.tree_map(tid, t.leaves.centers()))
        return np.concatenate(parts, axis=0)

    # -- adaptation -------------------------------------------------------------------

    def refine(self, mask: np.ndarray) -> "Forest":
        """Refine flat-order-marked leaves (mask over all trees)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length mismatch")
        offs = self.tree_offsets()
        return Forest(
            self.conn,
            [
                t.refine(mask[offs[i] : offs[i + 1]])
                for i, t in enumerate(self.trees)
            ],
        )

    def coarsen(self, mask: np.ndarray) -> tuple["Forest", int]:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length mismatch")
        offs = self.tree_offsets()
        new_trees = []
        nfam = 0
        for i, t in enumerate(self.trees):
            nt, nf = t.coarsen(mask[offs[i] : offs[i + 1]])
            new_trees.append(nt)
            nfam += nf
        return Forest(self.conn, new_trees), nfam

    # -- balance ----------------------------------------------------------------------

    def _cross_tree_marks(self, marks: list[np.ndarray]) -> bool:
        """Propagate balance requirements across tree faces.

        For every leaf, the same-size neighbor sample points that exit the
        tree through exactly one face are transformed into the adjacent
        tree and the containing leaf is marked if it is two or more levels
        coarser.  Returns True if anything was marked.
        """
        changed = False
        for tid, tree in enumerate(self.trees):
            leaves = tree.leaves
            if len(leaves) == 0:
                continue
            h = leaves.lengths()
            levels = tree.levels.astype(np.int64)
            for axis in range(3):
                for side in (0, 1):
                    face = 2 * axis + side
                    fc = self.conn.face_connections[tid][face]
                    if fc is None:
                        continue
                    d = np.zeros(3, dtype=np.int64)
                    d[axis] = 1 if side else -1
                    nx, ny, nz, _ = leaves.neighbor_anchors(d)
                    px = nx + h // 2
                    py = ny + h // 2
                    pz = nz + h // 2
                    # points that exited through exactly this face
                    coords = np.stack([px, py, pz], axis=1)
                    out = (coords[:, axis] >= ROOT_LEN) if side else (coords[:, axis] < 0)
                    inb = np.ones(len(coords), dtype=bool)
                    for a2 in range(3):
                        if a2 != axis:
                            inb &= (coords[:, a2] >= 0) & (coords[:, a2] < ROOT_LEN)
                    sel = out & inb
                    if not sel.any():
                        continue
                    q = fc.transform(coords[sel])
                    if np.any(q < 0) or np.any(q >= ROOT_LEN):
                        raise AssertionError("face transform left the neighbor tree")
                    nb = self.trees[fc.neighbor_tree]
                    idx = nb.find_containing(q[:, 0], q[:, 1], q[:, 2])
                    viol = nb.levels[idx].astype(np.int64) < levels[sel] - 1
                    if viol.any():
                        marks[fc.neighbor_tree][idx[viol]] = True
                        changed = True
        return changed

    def balance(self, connectivity: str = "edge", max_rounds: int = 64) -> tuple["Forest", int]:
        """Ripple-propagation 2:1 balance over the whole forest.

        Returns ``(forest, leaves_added)``.
        """
        dirs = directions_for(connectivity)
        forest = self
        n0 = len(self)
        for _ in range(max_rounds):
            marks = [
                _violating_leaf_marks(t, dirs) for t in forest.trees
            ]
            forest._cross_tree_marks(marks)
            if not any(m.any() for m in marks):
                return forest, len(forest) - n0
            forest = Forest(
                forest.conn,
                [
                    t.refine(m) if m.any() else t
                    for t, m in zip(forest.trees, marks)
                ],
            )
        raise RuntimeError("forest balance did not converge")

    def is_balanced(self, connectivity: str = "edge") -> bool:
        dirs = directions_for(connectivity)
        marks = [_violating_leaf_marks(t, dirs) for t in self.trees]
        if any(m.any() for m in marks):
            return False
        marks = [np.zeros(len(t), dtype=bool) for t in self.trees]
        return not self._cross_tree_marks(marks)

    # -- queries ---------------------------------------------------------------------

    def find_containing(self, tree: int, px, py, pz) -> np.ndarray:
        """Leaf index (within ``tree``) containing each integer point."""
        return self.trees[tree].find_containing(px, py, pz)

    def neighbor_leaf(
        self, tree: int, coords: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve integer sample points that may exit ``tree`` through one
        face.  Returns ``(tree_ids, leaf_idx)``; -1 where the point leaves
        the forest or exits diagonally."""
        coords = np.asarray(coords, dtype=np.int64)
        n = len(coords)
        out_tree = np.full(n, -1, dtype=np.int64)
        out_leaf = np.full(n, -1, dtype=np.int64)
        inside = np.all((coords >= 0) & (coords < ROOT_LEN), axis=1)
        if inside.any():
            c = coords[inside]
            out_tree[inside] = tree
            out_leaf[inside] = self.trees[tree].find_containing(c[:, 0], c[:, 1], c[:, 2])
        outside = ~inside
        if outside.any():
            c = coords[outside]
            viol = ((c < 0) | (c >= ROOT_LEN)).sum(axis=1)
            oi = np.flatnonzero(outside)
            for axis in range(3):
                for side in (0, 1):
                    face = 2 * axis + side
                    fc = self.conn.face_connections[tree][face]
                    sel = (viol == 1) & (
                        (c[:, axis] >= ROOT_LEN) if side else (c[:, axis] < 0)
                    )
                    if fc is None or not sel.any():
                        continue
                    q = fc.transform(c[sel])
                    idx = self.trees[fc.neighbor_tree].find_containing(
                        q[:, 0], q[:, 1], q[:, 2]
                    )
                    out_tree[oi[sel]] = fc.neighbor_tree
                    out_leaf[oi[sel]] = idx
        return out_tree, out_leaf

    # -- partitioning -----------------------------------------------------------------

    def partition_assignments(self, p: int, weights: np.ndarray | None = None) -> np.ndarray:
        """Rank of each leaf when the global (tree, Morton) order is cut
        into ``p`` equal segments (by count, or by cumulative weight).

        This is the forest PARTITIONTREE rule; used to visualize and
        account the drastically changing partitions of Figure 12.
        """
        n = len(self)
        if weights is None:
            base, rem = divmod(n, p)
            counts = [base + (1 if r < rem else 0) for r in range(p)]
            return np.repeat(np.arange(p), counts)
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (n,):
            raise ValueError("weights length mismatch")
        cum = np.cumsum(w) - w
        cuts = w.sum() * np.arange(1, p) / p
        return np.searchsorted(cuts, cum, side="right")
