"""p4est-style connectivity: how octrees glue into a forest.

A connectivity is a list of vertices and, per tree, the 8 vertex indices
of its corners (same x-fastest ordering as octants).  Face neighbor
relations and the *coordinate transforms* between adjacent trees are
derived automatically by matching the vertex-id quadruples of faces — the
paper's "connectivity structure that defines the topological relations
between neighboring octrees", where "connecting faces involve
transformations between the coordinate systems of each of the neighboring
trees".

The transform between two trees sharing a face is an affine lattice
isometry ``p_B = R p_A + o`` (R a signed permutation), computed from the
correspondence of the four shared vertices plus the rule that the outward
normal of the face in A maps to the inward normal in B.  All arithmetic is
exact integer arithmetic on octant coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..octree.morton import ROOT_LEN

__all__ = ["Connectivity", "FaceConnection", "unit_cube", "brick_connectivity"]

# Face corner quadruples in octant vertex numbering (x fastest), and the
# outward normal of each face.  Corner order within a face is the induced
# lattice order (lower axis fastest).
FACE_CORNERS = np.array(
    [
        (0, 2, 4, 6),  # -x
        (1, 3, 5, 7),  # +x
        (0, 1, 4, 5),  # -y
        (2, 3, 6, 7),  # +y
        (0, 1, 2, 3),  # -z
        (4, 5, 6, 7),  # +z
    ],
    dtype=np.int64,
)

FACE_NORMALS = np.array(
    [
        (-1, 0, 0), (1, 0, 0),
        (0, -1, 0), (0, 1, 0),
        (0, 0, -1), (0, 0, 1),
    ],
    dtype=np.int64,
)

# Lattice positions of the 8 corners in units of ROOT_LEN.
_CORNER_LATTICE = np.array(
    [[(i & 1), (i >> 1) & 1, (i >> 2) & 1] for i in range(8)], dtype=np.int64
)


@dataclass(frozen=True)
class FaceConnection:
    """One side of a tree-to-tree face gluing.

    Attributes
    ----------
    neighbor_tree, neighbor_face:
        The tree and face on the other side.
    R, o:
        The lattice transform ``p_B = R @ p_A + o`` mapping coordinates in
        this tree's frame (including points beyond the shared face) into
        the neighbor's frame.
    """

    neighbor_tree: int
    neighbor_face: int
    R: tuple  # 3x3 nested tuple of ints
    o: tuple  # length-3 tuple of ints

    def transform(self, pts: np.ndarray) -> np.ndarray:
        """Map (n, 3) integer points from this tree's frame to the
        neighbor's frame."""
        R = np.array(self.R, dtype=np.int64)
        o = np.array(self.o, dtype=np.int64)
        return pts @ R.T + o


class Connectivity:
    """Vertex-based forest connectivity with derived face transforms.

    Parameters
    ----------
    vertices:
        (n_vertices, 3) float coordinates (used for geometry maps).
    tree_vertices:
        (n_trees, 8) vertex indices per tree, octant corner order.
    """

    def __init__(self, vertices: np.ndarray, tree_vertices: np.ndarray, geometry=None):
        self.vertices = np.asarray(vertices, dtype=np.float64)
        self.tree_vertices = np.asarray(tree_vertices, dtype=np.int64)
        #: optional curved geometry (object with map/jacobian); when None
        #: the trilinear vertex map is used.  Mirrors p4est's geometry
        #: callbacks: the octree topology is the same, only the embedding
        #: of each tree changes.
        self.geometry = geometry
        if self.tree_vertices.ndim != 2 or self.tree_vertices.shape[1] != 8:
            raise ValueError("tree_vertices must be (n_trees, 8)")
        if self.tree_vertices.max() >= len(self.vertices):
            raise ValueError("vertex index out of range")
        self.n_trees = len(self.tree_vertices)
        # face_connections[t][f] is a FaceConnection or None (boundary)
        self.face_connections: list[list[FaceConnection | None]] = [
            [None] * 6 for _ in range(self.n_trees)
        ]
        self._build_face_connections()

    # -- construction -------------------------------------------------------------

    def _build_face_connections(self) -> None:
        # index faces by their sorted vertex-id quadruple
        by_key: dict[tuple, list[tuple[int, int]]] = {}
        for t in range(self.n_trees):
            for f in range(6):
                ids = self.tree_vertices[t, FACE_CORNERS[f]]
                key = tuple(sorted(int(v) for v in ids))
                by_key.setdefault(key, []).append((t, f))
        for key, items in by_key.items():
            if len(items) == 1:
                continue  # boundary face
            if len(items) > 2:
                raise ValueError(f"face shared by more than two trees: {key}")
            (ta, fa), (tb, fb) = items
            self.face_connections[ta][fa] = self._make_transform(ta, fa, tb, fb)
            self.face_connections[tb][fb] = self._make_transform(tb, fb, ta, fa)

    def _make_transform(self, ta: int, fa: int, tb: int, fb: int) -> FaceConnection:
        """Lattice transform from tree ``ta``'s frame to ``tb``'s frame
        across the shared face ``fa``/``fb``."""
        ids_a = self.tree_vertices[ta, FACE_CORNERS[fa]]
        ids_b = self.tree_vertices[tb, FACE_CORNERS[fb]]
        # positions of the face corners in each tree's lattice frame
        qa = _CORNER_LATTICE[FACE_CORNERS[fa]] * ROOT_LEN  # (4, 3)
        qb = _CORNER_LATTICE[FACE_CORNERS[fb]] * ROOT_LEN
        # correspondence: corner j of B's face equals which corner of A's?
        perm = np.array([int(np.flatnonzero(ids_a == v)[0]) for v in ids_b])
        # rb[j] (B frame) corresponds to qa[perm[j]] (A frame)
        # Build the affine map from three A-frame direction vectors to B:
        #   tangent1, tangent2 of the face, and the outward normal of fa
        #   mapping to the *inward* normal of fb.
        a0 = qa[perm[0]]
        b0 = qb[0]
        A_dirs = np.stack(
            [
                qa[perm[1]] - a0,
                qa[perm[2]] - a0,
                FACE_NORMALS[fa] * ROOT_LEN,
            ],
            axis=1,
        ).astype(np.float64)
        B_dirs = np.stack(
            [
                qb[1] - b0,
                qb[2] - b0,
                -FACE_NORMALS[fb] * ROOT_LEN,
            ],
            axis=1,
        ).astype(np.float64)
        R = B_dirs @ np.linalg.inv(A_dirs)
        R_int = np.rint(R).astype(np.int64)
        if not np.allclose(R, R_int, atol=1e-9):
            raise AssertionError("face transform is not a lattice isometry")
        o = b0 - R_int @ a0
        return FaceConnection(
            neighbor_tree=tb,
            neighbor_face=fb,
            R=tuple(map(tuple, R_int.tolist())),
            o=tuple(o.tolist()),
        )

    # -- geometry --------------------------------------------------------------------

    def tree_map(self, tree: int, ref: np.ndarray) -> np.ndarray:
        """Geometry map: (n, 3) reference coords in [0, 1]^3 of ``tree``
        to physical space (curved geometry when attached, else the
        trilinear vertex map)."""
        if self.geometry is not None:
            return self.geometry.map(self, tree, np.asarray(ref, dtype=np.float64))
        return self.trilinear_map(tree, ref)

    def trilinear_map(self, tree: int, ref: np.ndarray) -> np.ndarray:
        """The straight-sided trilinear vertex map (always available)."""
        ref = np.asarray(ref, dtype=np.float64)
        verts = self.vertices[self.tree_vertices[tree]]  # (8, 3)
        x, y, z = ref[:, 0], ref[:, 1], ref[:, 2]
        out = np.zeros((len(ref), 3))
        for i in range(8):
            w = (
                (x if i & 1 else 1 - x)
                * (y if (i >> 1) & 1 else 1 - y)
                * (z if (i >> 2) & 1 else 1 - z)
            )
            out += w[:, None] * verts[i]
        return out

    def tree_map_jacobian(self, tree: int, ref: np.ndarray) -> np.ndarray:
        """(n, 3, 3) Jacobian ``d(phys)/d(ref)`` of the tree geometry map
        at reference points in [0, 1]^3."""
        if self.geometry is not None:
            return self.geometry.jacobian(self, tree, np.asarray(ref, dtype=np.float64))
        return self.trilinear_jacobian(tree, ref)

    def trilinear_jacobian(self, tree: int, ref: np.ndarray) -> np.ndarray:
        """Jacobian of the straight-sided trilinear vertex map."""
        ref = np.asarray(ref, dtype=np.float64)
        verts = self.vertices[self.tree_vertices[tree]]  # (8, 3)
        x, y, z = ref[:, 0], ref[:, 1], ref[:, 2]
        J = np.zeros((len(ref), 3, 3))
        for i in range(8):
            fx = x if i & 1 else 1 - x
            fy = y if (i >> 1) & 1 else 1 - y
            fz = z if (i >> 2) & 1 else 1 - z
            dfx = np.full_like(x, 1.0 if i & 1 else -1.0)
            dfy = np.full_like(y, 1.0 if (i >> 1) & 1 else -1.0)
            dfz = np.full_like(z, 1.0 if (i >> 2) & 1 else -1.0)
            J[:, :, 0] += (dfx * fy * fz)[:, None] * verts[i]
            J[:, :, 1] += (fx * dfy * fz)[:, None] * verts[i]
            J[:, :, 2] += (fx * fy * dfz)[:, None] * verts[i]
        return J

    def boundary_faces(self) -> list[tuple[int, int]]:
        """All (tree, face) pairs on the forest boundary."""
        return [
            (t, f)
            for t in range(self.n_trees)
            for f in range(6)
            if self.face_connections[t][f] is None
        ]


def unit_cube() -> Connectivity:
    """Single-tree connectivity (the plain octree case)."""
    verts = _CORNER_LATTICE.astype(np.float64)
    return Connectivity(verts, np.arange(8)[None, :])


def brick_connectivity(nx: int, ny: int, nz: int) -> Connectivity:
    """``nx x ny x nz`` grid of unit-cube trees (Cartesian multiblock).

    All trees share the same orientation, so every transform is a pure
    translation — the simplest nontrivial forest.
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("brick dimensions must be positive")

    def vid(i, j, k):
        return (k * (ny + 1) + j) * (nx + 1) + i

    verts = np.array(
        [
            (i, j, k)
            for k in range(nz + 1)
            for j in range(ny + 1)
            for i in range(nx + 1)
        ],
        dtype=np.float64,
    )
    trees = []
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                trees.append(
                    [
                        vid(i + (c & 1), j + ((c >> 1) & 1), k + ((c >> 2) & 1))
                        for c in range(8)
                    ]
                )
    return Connectivity(verts, np.array(trees, dtype=np.int64))
