"""Recursive face iteration: classify every (element, face) pair of a
complete 2:1-balanced forest by sort-merge joins on face descriptors.

The DG face builder originally classified faces by geometric containment
probes: sample the center of every same-size neighbor region and run a
top-down ``neighbor_leaf`` search per (tree, direction), plus four more
quarter probes per coarse face.  This module is the p4est-``iterate``
style replacement: each element face becomes a descriptor
``(tree, plane, u, v, level)``; same-size faces pair up by an exact join
of plus-faces against minus-faces, and half-size faces pair up by joining
the fine face's coarse-aligned key ``(tree, plane, u & ~(2h-1),
v & ~(2h-1), level - 1)`` against the native coarse keys.  Leaves
partition space, so the two joins are mutually exclusive and — on a
complete, face-2:1-balanced forest — exhaustive; an unmatched in-tree
face is a structural error and raises.

Cross-tree faces (rotated frames) are only *detected* here (``valid``
without ``same``); the DG builder routes them through its per-face
mortar path, exactly as the probe classifier does.  Connectivities with
a tree face glued to itself (periodic self-connection) are not
supported — neither are they by the probe path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..octree import ROOT_LEN
from ..octree.faces import row_lookup

__all__ = ["FaceClassification", "match_faces"]


@dataclass
class FaceClassification:
    """Per-(element, face) classification, probe-compatible.

    ``subs[e, f, q]`` holds the four half-size neighbors of a coarse
    face in quadrant order ``q = 2*j2 + j1`` (j1 along the lower
    tangential axis) — the order the quarter probes are sampled in.
    """

    valid: np.ndarray  # (ne, 6) a neighbor exists (in-tree or cross-tree)
    same: np.ndarray  # (ne, 6) neighbor is in the same tree
    idrive: np.ndarray  # (ne, 6) this element's face drives the quadrature
    coarse: np.ndarray  # (ne, 6) four half-size neighbors drive
    g_nb: np.ndarray  # (ne, 6) neighbor element index for idrive faces
    subs: np.ndarray  # (ne, 6, 4) fine neighbor indices for coarse faces


def match_faces(tids: np.ndarray, octs, conn) -> FaceClassification:
    """Classify all faces of the flattened forest ``(tids, octs)``.

    ``octs`` is the tree-major concatenation of per-tree leaves and
    ``tids`` the tree id per element; indices in the result refer to this
    flattened ordering (the DG builder's global element index).
    """
    ne = len(octs)
    lvl = octs.level.astype(np.int64)
    h = octs.lengths().astype(np.int64)
    anchors = np.stack([octs.x, octs.y, octs.z], axis=1).astype(np.int64)
    tid64 = tids.astype(np.int64)

    valid = np.zeros((ne, 6), dtype=bool)
    same = np.zeros((ne, 6), dtype=bool)
    idrive = np.zeros((ne, 6), dtype=bool)
    coarse = np.zeros((ne, 6), dtype=bool)
    g_nb = np.zeros((ne, 6), dtype=np.int64)
    subs = np.full((ne, 6, 4), -1, dtype=np.int64)

    has_conn = np.array(
        [[fc is not None for fc in fcs] for fcs in conn.face_connections],
        dtype=bool,
    )

    for axis in range(3):
        t1, t2 = [a2 for a2 in range(3) if a2 != axis]
        fm, fp = 2 * axis, 2 * axis + 1
        lo_bound = anchors[:, axis] == 0
        hi_bound = anchors[:, axis] + h == ROOT_LEN
        # tree-boundary faces: cross-tree when connected, else boundary
        valid[lo_bound, fm] = has_conn[tid64[lo_bound], fm]
        valid[hi_bound, fp] = has_conn[tid64[hi_bound], fp]

        ip = np.flatnonzero(~hi_bound)  # elements with an in-tree plus face
        im = np.flatnonzero(~lo_bound)  # ... minus face
        pcols = (
            tid64[ip],
            anchors[ip, axis] + h[ip],
            anchors[ip, t1],
            anchors[ip, t2],
            lvl[ip],
        )
        mcols = (
            tid64[im],
            anchors[im, axis],
            anchors[im, t1],
            anchors[im, t2],
            lvl[im],
        )

        # conforming: identical plane, tangential anchor and level
        j = row_lookup(pcols, mcols)
        hit = j >= 0
        ep, em = ip[hit], im[j[hit]]
        valid[ep, fp] = same[ep, fp] = idrive[ep, fp] = True
        g_nb[ep, fp] = em
        valid[em, fm] = same[em, fm] = idrive[em, fm] = True
        g_nb[em, fm] = ep

        # half-size, fine plus vs coarse minus: round the fine face's
        # tangential anchor down to the coarse grid and drop one level
        fpc = (
            tid64[ip],
            anchors[ip, axis] + h[ip],
            anchors[ip, t1] & ~(2 * h[ip] - 1),
            anchors[ip, t2] & ~(2 * h[ip] - 1),
            lvl[ip] - 1,
        )
        j = row_lookup(fpc, mcols)
        hit = j >= 0
        ep, em = ip[hit], im[j[hit]]
        valid[ep, fp] = same[ep, fp] = idrive[ep, fp] = True
        g_nb[ep, fp] = em
        valid[em, fm] = same[em, fm] = coarse[em, fm] = True
        q = 2 * ((anchors[ep, t2] - anchors[em, t2]) // h[ep]) + (
            anchors[ep, t1] - anchors[em, t1]
        ) // h[ep]
        subs[em, fm, q] = ep

        # half-size, fine minus vs coarse plus
        fmc = (
            tid64[im],
            anchors[im, axis],
            anchors[im, t1] & ~(2 * h[im] - 1),
            anchors[im, t2] & ~(2 * h[im] - 1),
            lvl[im] - 1,
        )
        j = row_lookup(fmc, pcols)
        hit = j >= 0
        em2, ep2 = im[hit], ip[j[hit]]
        valid[em2, fm] = same[em2, fm] = idrive[em2, fm] = True
        g_nb[em2, fm] = ep2
        valid[ep2, fp] = same[ep2, fp] = coarse[ep2, fp] = True
        q = 2 * ((anchors[em2, t2] - anchors[ep2, t2]) // h[em2]) + (
            anchors[em2, t1] - anchors[ep2, t1]
        ) // h[em2]
        subs[ep2, fp, q] = em2

        if not (
            (idrive[ip, fp] | coarse[ip, fp]).all()
            and (idrive[im, fm] | coarse[im, fm]).all()
        ):
            raise AssertionError(
                "unmatched in-tree face: forest is not complete and "
                "2:1 face-balanced"
            )

    if np.any(subs[coarse] < 0):
        raise AssertionError("coarse face with fewer than 4 fine neighbors")
    return FaceClassification(
        valid=valid, same=same, idrive=idrive, coarse=coarse, g_nb=g_nb, subs=subs
    )
