"""Forest-of-octrees AMR on general geometries (the P4EST layer)."""

from .connectivity import (
    Connectivity,
    FaceConnection,
    brick_connectivity,
    unit_cube,
)
from .cubed_sphere import RadialProjectionGeometry, cap_axes, cubed_sphere_connectivity
from .forest import Forest
from .parforest import FOREST_MAX_LEVEL, ParForest, forest_key

__all__ = [
    "Connectivity",
    "FaceConnection",
    "brick_connectivity",
    "unit_cube",
    "cubed_sphere_connectivity",
    "RadialProjectionGeometry",
    "cap_axes",
    "Forest",
    "ParForest",
    "FOREST_MAX_LEVEL",
    "forest_key",
]
