"""Forest-of-octrees AMR on general geometries (the P4EST layer)."""

from .connectivity import (
    Connectivity,
    FaceConnection,
    brick_connectivity,
    unit_cube,
)
from .cubed_sphere import RadialProjectionGeometry, cap_axes, cubed_sphere_connectivity
from .faces import FaceClassification, match_faces
from .forest import Forest
from .parforest import FOREST_MAX_LEVEL, ParForest, forest_key, sample_queries
from .recursive import balance_forest_recursive, ghost_recursive

__all__ = [
    "Connectivity",
    "FaceConnection",
    "brick_connectivity",
    "unit_cube",
    "cubed_sphere_connectivity",
    "RadialProjectionGeometry",
    "cap_axes",
    "Forest",
    "ParForest",
    "FOREST_MAX_LEVEL",
    "forest_key",
    "sample_queries",
    "ghost_recursive",
    "balance_forest_recursive",
    "FaceClassification",
    "match_faces",
]
