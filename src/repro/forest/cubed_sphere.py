"""Cubed-sphere spherical shell connectivity (24 trees).

"The spherical shell is split into 6 caps as usual in a cubed-sphere
decomposition.  Each cap consists of 4 octrees, resulting in 24 adaptive
octrees overall." (Section VII)

Each cap is one face of the cube [-1,1]^3, subdivided 2x2; the 3x3 grid of
patch corners is projected radially onto the sphere at the inner and outer
shell radii, giving each tree 8 vertices (4 inner + 4 outer).  Shared
vertices between caps are deduplicated so the automatic face matching of
:class:`~repro.forest.connectivity.Connectivity` discovers all inter-cap
gluings, including the rotated coordinate systems between caps.
"""

from __future__ import annotations

import numpy as np

from .connectivity import Connectivity

__all__ = ["cubed_sphere_connectivity", "cap_axes", "RadialProjectionGeometry"]


class RadialProjectionGeometry:
    """Exact curved shell geometry by radial projection.

    The trilinear vertex map of a tree gives a straight-sided hexahedron;
    projecting its image radially (direction from the trilinear point,
    radius interpolated trilinearly from the corner radii) produces a
    smooth mapping that is (a) exactly spherical on the inner/outer shell
    faces, and (b) consistent across tree faces, because the face
    restriction depends only on the four shared vertices.  This plays the
    role of p4est's geometry callbacks: refinement converges to the true
    curved shell instead of the chordal approximation.
    """

    def map(self, conn, tree: int, ref: np.ndarray) -> np.ndarray:
        P = conn.trilinear_map(tree, ref)
        r = self._radius(conn, tree, ref)
        norm = np.linalg.norm(P, axis=1)
        return P / norm[:, None] * r[:, None]

    def jacobian(self, conn, tree: int, ref: np.ndarray) -> np.ndarray:
        """Analytic Jacobian: x = r(ref) * N(ref) with N = P/|P|."""
        P = conn.trilinear_map(tree, ref)
        Jp = conn.trilinear_jacobian(tree, ref)  # dP/dref
        r = self._radius(conn, tree, ref)
        gr = self._radius_gradient(conn, tree, ref)  # dr/dref (n, 3)
        norm = np.linalg.norm(P, axis=1)
        N = P / norm[:, None]
        # dN/dref = (I - N N^T)/|P| @ dP/dref
        proj = np.eye(3)[None] - N[:, :, None] * N[:, None, :]
        dN = np.einsum("nab,nbk->nak", proj / norm[:, None, None], Jp)
        return N[:, :, None] * gr[:, None, :] + r[:, None, None] * dN

    @staticmethod
    def _corner_radii(conn, tree: int) -> np.ndarray:
        return np.linalg.norm(conn.vertices[conn.tree_vertices[tree]], axis=1)

    def _radius(self, conn, tree: int, ref: np.ndarray) -> np.ndarray:
        rad = self._corner_radii(conn, tree)
        x, y, z = ref[:, 0], ref[:, 1], ref[:, 2]
        out = np.zeros(len(ref))
        for i in range(8):
            w = (
                (x if i & 1 else 1 - x)
                * (y if (i >> 1) & 1 else 1 - y)
                * (z if (i >> 2) & 1 else 1 - z)
            )
            out += w * rad[i]
        return out

    def _radius_gradient(self, conn, tree: int, ref: np.ndarray) -> np.ndarray:
        rad = self._corner_radii(conn, tree)
        x, y, z = ref[:, 0], ref[:, 1], ref[:, 2]
        g = np.zeros((len(ref), 3))
        for i in range(8):
            fx = x if i & 1 else 1 - x
            fy = y if (i >> 1) & 1 else 1 - y
            fz = z if (i >> 2) & 1 else 1 - z
            sx = 1.0 if i & 1 else -1.0
            sy = 1.0 if (i >> 1) & 1 else -1.0
            sz = 1.0 if (i >> 2) & 1 else -1.0
            g[:, 0] += sx * fy * fz * rad[i]
            g[:, 1] += fx * sy * fz * rad[i]
            g[:, 2] += fx * fy * sz * rad[i]
        return g

# For each of the 6 cube faces: (normal axis, sign, u axis, v axis).
_CAPS = [
    (0, +1, 1, 2),  # +x
    (0, -1, 1, 2),  # -x
    (1, +1, 2, 0),  # +y
    (1, -1, 2, 0),  # -y
    (2, +1, 0, 1),  # +z
    (2, -1, 0, 1),  # -z
]


def cap_axes(cap: int) -> tuple[int, int, int, int]:
    """(normal_axis, sign, u_axis, v_axis) of cap 0..5."""
    return _CAPS[cap]


def _cap_point(cap: int, u: float, v: float) -> np.ndarray:
    """Point on the unit cube face of ``cap`` at parameters (u, v) in
    [-1, 1]^2, then radially projected to the unit sphere."""
    axis, sign, ua, va = _CAPS[cap]
    p = np.zeros(3)
    p[axis] = sign
    p[ua] = u
    p[va] = v
    return p / np.linalg.norm(p)


def cubed_sphere_connectivity(
    r_inner: float = 0.55, r_outer: float = 1.0, curved: bool = True
) -> Connectivity:
    """Build the 24-tree spherical shell.

    ``r_inner``/``r_outer`` default to Earth-like mantle proportions
    (CMB radius / surface radius ~ 0.55).  With ``curved=True`` (default)
    the exact :class:`RadialProjectionGeometry` is attached so refinement
    converges to the true shell; ``curved=False`` keeps straight-sided
    trilinear trees.
    """
    if not 0 < r_inner < r_outer:
        raise ValueError("need 0 < r_inner < r_outer")
    verts: list[np.ndarray] = []
    vert_index: dict[tuple, int] = {}

    def add_vertex(p: np.ndarray) -> int:
        key = tuple(np.round(p, 12))
        if key not in vert_index:
            vert_index[key] = len(verts)
            verts.append(p)
        return vert_index[key]

    trees = []
    params = [-1.0, 0.0, 1.0]
    for cap in range(6):
        # 3x3 grid of sphere points for this cap, at both radii
        grid_ids = np.empty((3, 3, 2), dtype=np.int64)
        for iu in range(3):
            for iv in range(3):
                s = _cap_point(cap, params[iu], params[iv])
                grid_ids[iu, iv, 0] = add_vertex(s * r_inner)
                grid_ids[iu, iv, 1] = add_vertex(s * r_outer)
        for pu in range(2):
            for pv in range(2):
                # tree corners: local x = u, y = v, z = radial (in->out)
                corner_ids = [
                    grid_ids[pu + (c & 1), pv + ((c >> 1) & 1), (c >> 2) & 1]
                    for c in range(8)
                ]
                # ensure a right-handed (positive Jacobian) vertex order:
                # if the (u, v, r) frame of this cap is left-handed, swap
                # the u/v roles by transposing the corner bit pattern.
                v8 = np.array([verts[i] for i in corner_ids])
                e1 = v8[1] - v8[0]
                e2 = v8[2] - v8[0]
                e3 = v8[4] - v8[0]
                if np.linalg.det(np.stack([e1, e2, e3], axis=1)) < 0:
                    corner_ids = [
                        corner_ids[(c & 1) * 2 + ((c >> 1) & 1) + (c & 4)]
                        for c in range(8)
                    ]
                trees.append(corner_ids)
    geometry = RadialProjectionGeometry() if curved else None
    return Connectivity(np.array(verts), np.array(trees, dtype=np.int64), geometry=geometry)
