"""Distributed forest of octrees — the parallel P4EST core (Section VII).

The global leaf order is (tree id, Morton key), threaded tree by tree;
each rank owns a contiguous segment of it.  As in the single-octree case
(:mod:`repro.octree.partree`), the only global metadata is one composite
key per rank, and all operations are bulk-synchronous:

- :meth:`ParForest.balance` — ripple-propagated 2:1 balance, with
  neighbor queries that leave a tree through a face transformed into the
  adjacent tree's coordinates by the connectivity's exact lattice
  transforms and routed to the owning rank;
- :meth:`ParForest.partition` — equal-count repartition of the global
  (tree, Morton) curve with one all-to-all.

Composite key encoding: parallel forests restrict leaves to level <= 19
so every anchor key is a multiple of 64; ``fkey = (tree << 57) | (key >>
6)`` is then an exact, order-preserving uint64 encoding for up to 128
trees — the cubed sphere's 24 fit comfortably.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..octree import OctantArray, ROOT_LEN, morton_encode
from ..octree.linear import LinearOctree
from ..octree.morton import key_range_size
from ..octree.octants import directions_for
from ..parallel import SimComm
from .connectivity import Connectivity
from .forest import Forest

__all__ = ["ParForest", "FOREST_MAX_LEVEL", "forest_key", "sample_queries"]

#: Deepest level supported by the distributed forest encoding.
FOREST_MAX_LEVEL = 19

_SHIFT = np.uint64(57)
_KSHIFT = np.uint64(6)
_TOTAL_PER_TREE = np.uint64(1) << np.uint64(57)  # reduced keys per tree


def forest_key(tree_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Composite (tree, Morton) ordering key (exact for level <= 19)."""
    t = np.asarray(tree_ids).astype(np.uint64)
    k = np.asarray(keys).astype(np.uint64)
    return (t << _SHIFT) | (k >> _KSHIFT)


def _frange(levels) -> np.ndarray:
    """Reduced-key interval length of octants at the given levels."""
    return key_range_size(levels) >> _KSHIFT


@dataclass
class ParForest:
    """One rank's contiguous segment of the global forest leaf sequence."""

    comm: SimComm
    conn: Connectivity
    tree_ids: np.ndarray  # (n,) int64, nondecreasing
    octs: OctantArray     # sorted by (tree, key)

    def __len__(self) -> int:
        return len(self.octs)

    def __post_init__(self):
        if len(self.octs) and self.octs.level.max() > FOREST_MAX_LEVEL:
            raise ValueError(f"ParForest supports levels <= {FOREST_MAX_LEVEL}")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def uniform(cls, comm: SimComm, conn: Connectivity, level: int) -> "ParForest":
        """Every rank gets an equal slice of the (tree, Morton)-ordered
        uniform forest (the forest NEWTREE)."""
        per_tree = OctantArray.uniform(level)
        n_total = conn.n_trees * len(per_tree)
        base, rem = divmod(n_total, comm.size)
        lo = comm.rank * base + min(comm.rank, rem)
        hi = lo + base + (1 if comm.rank < rem else 0)
        idx = np.arange(lo, hi)
        tid = idx // len(per_tree)
        within = idx % len(per_tree)
        sub = per_tree[within]
        return cls(comm, conn, tid.astype(np.int64), sub)

    # -- global metadata ------------------------------------------------------------

    def fkeys(self) -> np.ndarray:
        return forest_key(self.tree_ids, self.octs.keys())

    def markers(self) -> np.ndarray:
        """Per-rank first composite keys; rank r owns [m[r], m[r+1])."""
        first = int(self.fkeys()[0]) if len(self) else -1
        firsts = self.comm.allgather(first)
        p = self.comm.size
        m = np.empty(p + 1, dtype=np.uint64)
        m[p] = np.uint64(self.conn.n_trees) << _SHIFT
        for r in range(p - 1, -1, -1):
            m[r] = np.uint64(firsts[r]) if firsts[r] >= 0 else m[r + 1]
        m[0] = np.uint64(0)
        return m

    def owners(self, markers: np.ndarray, qfkeys: np.ndarray) -> np.ndarray:
        return np.searchsorted(markers[1:-1], qfkeys, side="right").astype(np.int64)

    def global_count(self) -> int:
        return self.comm.allreduce(len(self))

    def level_histogram(self) -> dict[int, int]:
        counts = np.zeros(FOREST_MAX_LEVEL + 1, dtype=np.int64)
        lv, c = np.unique(self.octs.level, return_counts=True)
        counts[lv.astype(np.int64)] = c
        total = self.comm.allreduce(counts)
        return {int(i): int(n) for i, n in enumerate(total) if n > 0}

    # -- local adaptation --------------------------------------------------------------

    def refine(self, mask: np.ndarray) -> "ParForest":
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length mismatch")
        if not mask.any():
            return self
        kept_t = self.tree_ids[~mask]
        kept = self.octs[~mask]
        ref_t = np.repeat(self.tree_ids[mask], 8)
        refined = self.octs[mask].children()
        tid = np.concatenate([kept_t, ref_t])
        octs = OctantArray.concat([kept, refined])
        order = np.lexsort((octs.level, octs.keys(), tid))
        return ParForest(self.comm, self.conn, tid[order], octs[order])

    def coarsen(self, mask: np.ndarray) -> tuple["ParForest", int]:
        """Coarsen complete, fully-local families per tree."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError("mask length mismatch")
        parts_t, parts_o, nfam = [], [], 0
        for t in np.unique(self.tree_ids):
            sel = self.tree_ids == t
            lt = LinearOctree(self.octs[sel], presorted=True)
            new_lt, nf = lt.coarsen(mask[sel])
            nfam += nf
            parts_t.append(np.full(len(new_lt), t, dtype=np.int64))
            parts_o.append(new_lt.leaves)
        if not parts_o:
            return self, 0
        tid = np.concatenate(parts_t)
        octs = OctantArray.concat(parts_o)
        return ParForest(self.comm, self.conn, tid, octs), nfam

    # -- balance -----------------------------------------------------------------------

    def _sample_queries(self, connectivity: str):
        """(query_fkeys, query_levels) of all neighbor sample points of
        local leaves: within-tree for all directions, cross-tree through
        faces (exact lattice transforms)."""
        return sample_queries(self.tree_ids, self.octs, self.conn, connectivity)

    def balance(
        self,
        connectivity: str = "edge",
        max_rounds: int = 64,
        algorithm: str = "search",
    ) -> tuple["ParForest", int]:
        """Distributed 2:1 balance across and within trees (recorded
        under the ``amr/balance`` phase when an obs timer is bound).

        ``algorithm="search"`` is the ripple (one alltoall round per
        propagated level); ``"recursive"`` is the low-collective variant
        of :mod:`repro.forest.recursive` — same forest, bitwise."""
        with obs.phase("amr/balance"):
            if algorithm == "recursive":
                from .recursive import balance_forest_recursive

                pf, added, _ = balance_forest_recursive(
                    self, connectivity, max_rounds
                )
                return pf, added
            if algorithm != "search":
                raise ValueError(f"unknown balance algorithm {algorithm!r}")
            return self._balance_impl(connectivity, max_rounds)

    def _balance_impl(self, connectivity: str, max_rounds: int) -> tuple["ParForest", int]:
        pf = self
        n0 = pf.global_count()
        comm = self.comm
        for _ in range(max_rounds):
            markers = pf.markers()
            qfk, qlv = pf._sample_queries(connectivity)
            owners = pf.owners(markers, qfk)
            send = []
            for r in range(comm.size):
                s = owners == r
                buf = np.empty((int(s.sum()), 2), dtype=np.uint64)
                buf[:, 0] = qfk[s]
                buf[:, 1] = qlv[s].astype(np.uint64)
                send.append(buf)
            recv = comm.alltoall(send)
            fkeys = pf.fkeys()
            mark = np.zeros(len(pf), dtype=bool)
            for buf in recv:
                if len(buf) == 0:
                    continue
                idx = np.searchsorted(fkeys, buf[:, 0], side="right") - 1
                viol = pf.octs.level[idx].astype(np.int64) < buf[:, 1].astype(np.int64) - 1
                mark[idx[viol]] = True
            changed = comm.allreduce(bool(mark.any()), op="lor")
            if mark.any():
                pf = pf.refine(mark)
            if not changed:
                return pf, pf.global_count() - n0
        raise RuntimeError("parallel forest balance did not converge")

    # -- partition ---------------------------------------------------------------------

    def partition(self, weights: np.ndarray | None = None) -> "ParForest":
        """Equal-count (or weighted) repartition of the global curve
        (recorded under the ``amr/partition`` phase when an obs timer is
        bound)."""
        with obs.phase("amr/partition"):
            return self._partition_impl(weights)

    def _partition_impl(self, weights: np.ndarray | None) -> "ParForest":
        comm = self.comm
        n_local = len(self)
        if weights is None:
            offset, total = comm.global_offsets(n_local)
            base, rem = divmod(total, comm.size)
            tgt = np.array(
                [r * base + min(r, rem) for r in range(comm.size + 1)], dtype=np.int64
            )
            gidx = offset + np.arange(n_local)
            dest = np.searchsorted(tgt[1:], gidx, side="right")
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n_local,):
                raise ValueError("weights length mismatch")
            prev = comm.exscan(w.sum())
            total_w = comm.allreduce(w.sum())
            cum = prev + np.cumsum(w) - w
            cuts = total_w * np.arange(1, comm.size) / comm.size
            dest = np.searchsorted(cuts, cum, side="right")
        packed = np.empty((n_local, 5), dtype=np.int64)
        packed[:, 0] = self.tree_ids
        packed[:, 1] = self.octs.x
        packed[:, 2] = self.octs.y
        packed[:, 3] = self.octs.z
        packed[:, 4] = self.octs.level
        send = []
        for r in range(comm.size):
            lo = int(np.searchsorted(dest, r, side="left"))
            hi = int(np.searchsorted(dest, r, side="right"))
            send.append(packed[lo:hi])
        recv = [b for b in comm.alltoall(send) if len(b)]
        blk = np.concatenate(recv, axis=0) if recv else packed[:0]
        return ParForest(
            self.comm,
            self.conn,
            blk[:, 0].copy(),
            OctantArray(blk[:, 1], blk[:, 2], blk[:, 3], blk[:, 4]),
        )

    # -- gather (testing) -------------------------------------------------------------

    def gather(self) -> Forest:
        """Collect the full forest on every rank (verification only)."""
        packed = np.empty((len(self), 5), dtype=np.int64)
        packed[:, 0] = self.tree_ids
        packed[:, 1] = self.octs.x
        packed[:, 2] = self.octs.y
        packed[:, 3] = self.octs.z
        packed[:, 4] = self.octs.level
        parts = [p for p in self.comm.allgather(packed) if len(p)]
        blk = np.concatenate(parts, axis=0)
        trees = []
        for t in range(self.conn.n_trees):
            sel = blk[:, 0] == t
            trees.append(
                LinearOctree(
                    OctantArray(blk[sel, 1], blk[sel, 2], blk[sel, 3], blk[sel, 4])
                )
            )
        return Forest(self.conn, trees)


def sample_queries(
    tree_ids: np.ndarray,
    octs: OctantArray,
    conn: Connectivity,
    connectivity: str,
) -> tuple[np.ndarray, np.ndarray]:
    """(query_fkeys, query_levels) of all neighbor sample points of the
    given leaves: within-tree for all directions of ``connectivity``,
    cross-tree through faces (exact lattice transforms).

    Shared by the ripple balance (on local leaves) and the recursive
    balance (also on received remote boundary leaves), so both paths mark
    from identical sample sets."""
    dirs = directions_for(connectivity)
    face_dirs = directions_for("face")
    qf, ql = [], []
    for t in np.unique(tree_ids):
        sel = tree_ids == t
        leaves = octs[sel]
        h = leaves.lengths()
        levels = leaves.level.astype(np.int64)
        for d in dirs:
            nx, ny, nz, ok = leaves.neighbor_anchors(d)
            if ok.any():
                keys = morton_encode(
                    nx[ok] + h[ok] // 2, ny[ok] + h[ok] // 2, nz[ok] + h[ok] // 2
                )
                qf.append(forest_key(np.full(int(ok.sum()), t), keys))
                ql.append(levels[ok])
        # cross-tree: points beyond exactly one face
        for d in face_dirs:
            axis = int(np.flatnonzero(d)[0])
            side = 1 if d[axis] > 0 else 0
            fc = conn.face_connections[t][2 * axis + side]
            if fc is None:
                continue
            nx, ny, nz, ok = leaves.neighbor_anchors(d)
            out = ~ok
            if not out.any():
                continue
            pts = np.stack(
                [nx[out] + h[out] // 2, ny[out] + h[out] // 2, nz[out] + h[out] // 2],
                axis=1,
            )
            # keep only single-face exits (edge/corner exits of the
            # forest are face-balanced transitively)
            bad = ((pts < 0) | (pts >= ROOT_LEN)).sum(axis=1)
            sel1 = bad == 1
            if not sel1.any():
                continue
            q = fc.transform(pts[sel1])
            keys = morton_encode(q[:, 0], q[:, 1], q[:, 2])
            qf.append(forest_key(np.full(int(sel1.sum()), fc.neighbor_tree), keys))
            ql.append(levels[out][sel1])
    if qf:
        return np.concatenate(qf), np.concatenate(ql)
    return np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64)
