"""Recursive distributed-forest algorithms (ghost + low-collective balance).

Ports the production p4est replacements of Isaac, Burstedde, Wilcox &
Ghattas ("Recursive Algorithms for Distributed Forests of Octrees") for
this paper's search-based ALPS kernels:

- :func:`ghost_recursive` — search-free ghost construction for the
  distributed octree.  Instead of sampling 26 directions x 8 child
  centers per leaf and paying a query/reply alltoall pair, each rank
  recursively intersects its boundary leaves' one-cell-dilated boxes with
  the partition markers (:mod:`repro.octree.traverse`), determines
  *exactly* which remote ranks are adjacent to each leaf, and ships the
  boundary leaves in a single targeted alltoall.
- :func:`balance_forest_recursive` — low-collective 2:1 balance of a
  :class:`~repro.forest.parforest.ParForest`: the local subtree is
  balanced with zero communication, then boundary leaves are merged into
  the insulation layers of neighboring ranks (within-tree via dilated
  boxes, cross-tree via the connectivity's exact lattice transforms of
  the one-cell face slabs) and re-balanced until a single convergence
  allreduce reports a global fixed point — typically two exchanges
  instead of one alltoall round per propagated level.

Both produce results bitwise identical to the search paths: the exact
ghost layer is unique, and so is the 2:1 closure of a complete forest.
"""

from __future__ import annotations

import numpy as np

from ..octree import OctantArray, ROOT_LEN
from ..octree.partree import ParTree, partition_markers
from ..octree.traverse import boundary_leaf_mask, box_owner_pairs, dilated_boxes
from .parforest import (
    FOREST_MAX_LEVEL,
    ParForest,
    forest_key,
    sample_queries,
)

__all__ = ["ghost_recursive", "balance_forest_recursive"]

#: Side length of a forest-reduced cell in finest-cell units: the
#: composite ordering drops the lowest 6 Morton bits (2 per axis), so the
#: finest addressable unit is a level-(MAX_LEVEL - 2) = level-19 cell.
_UNIT = 4

_SHIFT = np.uint64(57)


def ghost_recursive(pt: ParTree) -> tuple[OctantArray, np.ndarray]:
    """Recursive GHOST: the exact 26-adjacency ghost layer in one
    alltoall.

    Each rank computes, per boundary leaf, the remote ranks owning any
    cell of the leaf's one-cell-dilated shell — by marker recursion, not
    sampling — and sends the leaf to exactly those ranks.  Returns
    ``(ghosts, ghost_owner_ranks)`` sorted by Morton key, the same layer
    (bitwise) as the search path's sampled-and-filtered result.
    """
    comm = pt.comm
    local = pt.local
    markers = partition_markers(comm, local)
    from ..octree.traverse import ghost_destinations

    idx, dst = ghost_destinations(local, markers, comm.rank)
    sendbufs = []
    for r in range(comm.size):  # lint: allow-loop (per-rank, not per-element)
        sel = idx[dst == r]
        buf = np.empty((len(sel), 4), dtype=np.int64)
        buf[:, 0] = local.x[sel]
        buf[:, 1] = local.y[sel]
        buf[:, 2] = local.z[sel]
        buf[:, 3] = local.level[sel]
        sendbufs.append(buf)
    got = comm.alltoall(sendbufs)
    parts, owners_out = [], []
    for r, buf in enumerate(got):  # lint: allow-loop (per-rank, not per-element)
        if len(buf):
            parts.append(buf)
            owners_out.append(np.full(len(buf), r, dtype=np.int64))
    if not parts:
        return OctantArray.empty(), np.zeros(0, dtype=np.int64)
    blk = np.concatenate(parts, axis=0)
    own = np.concatenate(owners_out)
    ghosts = OctantArray(blk[:, 0], blk[:, 1], blk[:, 2], blk[:, 3])
    # each ghost arrives exactly once (from its owner): sort by key only
    order = np.argsort(ghosts.keys())
    return ghosts[order], own[order]


# --------------------------------------------------------------------------
# low-collective forest balance


def _forest_destinations(
    pf: ParForest, markers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """``(leaf_idx, dest_rank)`` pairs for the forest: remote ranks owning
    any reduced cell adjacent to each local leaf — within its tree via
    the dilated box, across connected tree faces via the transformed
    one-cell face slab.  Cross-tree adjacency through edges/corners is
    (like the ripple's queries) not propagated directly; it is covered
    transitively by face balance."""
    tids = pf.tree_ids
    octs = pf.octs
    rank = pf.comm.rank
    if not len(octs):
        e = np.zeros(0, dtype=np.int64)
        return e, e.copy()
    lo, hi = dilated_boxes(octs, unit=_UNIT)
    offs = tids.astype(np.uint64) << _SHIFT
    h = octs.lengths()
    # leaves on a connected tree face need cross-tree destinations even
    # when their (clamped) within-tree box is wholly local
    on_face = np.zeros(len(octs), dtype=bool)
    anchors = (octs.x, octs.y, octs.z)
    for t in np.unique(tids):
        fcs = pf.conn.face_connections[t]
        sel = tids == t
        for axis in range(3):
            if fcs[2 * axis] is not None:
                on_face |= sel & (anchors[axis] == 0)
            if fcs[2 * axis + 1] is not None:
                on_face |= sel & (anchors[axis] + h == ROOT_LEN)
    kmin = forest_key(tids, _encode_full(lo * _UNIT))
    kmax = forest_key(tids, _encode_full(hi * _UNIT))
    kmin_owner = np.searchsorted(markers[1:-1], kmin, side="right")
    kmax_owner = np.searchsorted(markers[1:-1], kmax, side="right")
    boundary = (kmin_owner != rank) | (kmax_owner != rank) | on_face
    cand = np.flatnonzero(boundary)
    pairs_i = []
    pairs_r = []
    it, rk = box_owner_pairs(lo[cand], hi[cand], cand, markers, offs[cand])
    pairs_i.append(it)
    pairs_r.append(rk)
    # cross-tree face slabs: the dilated box's one-cell layer beyond each
    # connected tree face, transformed to the neighbor tree's frame
    cx, cy, cz = octs.x[cand], octs.y[cand], octs.z[cand]
    ch = h[cand]
    ct = tids[cand]
    for t in np.unique(ct):
        fcs = pf.conn.face_connections[t]
        tsel = np.flatnonzero(ct == t)
        for face in range(6):
            fc = fcs[face]
            if fc is None:
                continue
            axis, side = face // 2, face % 2
            coord = (cx, cy, cz)[axis]
            if side:
                on = tsel[coord[tsel] + ch[tsel] == ROOT_LEN]
            else:
                on = tsel[coord[tsel] == 0]
            if not len(on):
                continue
            slo = np.stack([cx[on], cy[on], cz[on]], axis=1) - _UNIT
            shi = slo + np.stack([ch[on]] * 3, axis=1) + 2 * _UNIT - 1
            np.clip(slo, 0, ROOT_LEN - 1, out=slo)
            np.clip(shi, 0, ROOT_LEN - 1, out=shi)
            # normal extent: the one-cell layer beyond the face
            if side:
                slo[:, axis] = ROOT_LEN
                shi[:, axis] = ROOT_LEN + _UNIT - 1
            else:
                slo[:, axis] = -_UNIT
                shi[:, axis] = -1
            q0 = fc.transform(slo)
            q1 = fc.transform(shi)
            qlo = np.minimum(q0, q1) // _UNIT
            qhi = np.maximum(q0, q1) // _UNIT
            offs_nb = np.full(
                len(on), np.uint64(fc.neighbor_tree) << _SHIFT, dtype=np.uint64
            )
            it, rk = box_owner_pairs(qlo, qhi, cand[on], markers, offs_nb)
            pairs_i.append(it)
            pairs_r.append(rk)
    it = np.concatenate(pairs_i)
    rk = np.concatenate(pairs_r)
    remote = rk != rank
    it, rk = it[remote], rk[remote]
    code = it * np.int64(len(markers)) + rk
    _, first = np.unique(code, return_index=True)
    return it[first], rk[first]


def _encode_full(pts: np.ndarray) -> np.ndarray:
    """Morton keys of (n, 3) full-resolution coordinate rows."""
    from ..octree import morton_encode

    return morton_encode(pts[:, 0], pts[:, 1], pts[:, 2])


def _forest_ripple(
    pf: ParForest,
    connectivity: str,
    flo: np.uint64,
    fhi: np.uint64,
    extra_t: np.ndarray | None,
    extra_o: OctantArray | None,
) -> tuple[ParForest, bool]:
    """Balance this rank's forest segment against itself plus the static
    received boundary leaves, refining until a local fixed point.  Only
    sample queries landing in this rank's composite-key interval are
    answered (the identical marking rule as the ripple's routed
    queries)."""
    changed = False
    while True:
        if extra_o is None:
            src_t, src_o = pf.tree_ids, pf.octs
        else:
            src_t = np.concatenate([pf.tree_ids, extra_t])
            src_o = OctantArray.concat([pf.octs, extra_o])
        qfk, qlv = sample_queries(src_t, src_o, pf.conn, connectivity)
        keep = (qfk >= flo) & (qfk < fhi)
        if not keep.any():
            return pf, changed
        fkeys = pf.fkeys()
        idx = np.searchsorted(fkeys, qfk[keep], side="right") - 1
        viol = pf.octs.level[idx].astype(np.int64) < qlv[keep] - 1
        mark = np.zeros(len(pf), dtype=bool)
        mark[idx[viol]] = True
        if not mark.any():
            return pf, changed
        pf = pf.refine(mark)
        changed = True


def balance_forest_recursive(
    pf: ParForest, connectivity: str = "edge", max_rounds: int = 64
) -> tuple[ParForest, int, int]:
    """Low-collective forest BALANCE: local recursive balance, then
    boundary insertion/merge rounds with one convergence allreduce each.

    Markers are fixed for the whole call (balancing never changes a
    rank's first composite key): one allgather up front, then per
    exchange one alltoall of boundary leaves plus one allreduce —
    typically two exchanges total, versus the ripple's per-level
    allgather + query alltoall + reply processing.

    Returns ``(forest, leaves_added, exchanges)`` — the same forest,
    bitwise, as :meth:`ParForest._balance_impl` (unique 2:1 closure).
    """
    comm = pf.comm
    n0 = pf.global_count()
    markers = pf.markers()
    flo, fhi = markers[comm.rank], markers[comm.rank + 1]
    pf, _ = _forest_ripple(pf, connectivity, flo, fhi, None, None)
    exchanges = 0
    while exchanges < max_rounds:
        idx, dst = _forest_destinations(pf, markers)
        sendbufs = []
        for r in range(comm.size):  # lint: allow-loop (per-rank, not per-element)
            sel = idx[dst == r]
            buf = np.empty((len(sel), 5), dtype=np.int64)
            buf[:, 0] = pf.tree_ids[sel]
            buf[:, 1] = pf.octs.x[sel]
            buf[:, 2] = pf.octs.y[sel]
            buf[:, 3] = pf.octs.z[sel]
            buf[:, 4] = pf.octs.level[sel]
            sendbufs.append(buf)
        recv = [b for b in comm.alltoall(sendbufs) if len(b)]
        exchanges += 1
        if recv:
            blk = np.concatenate(recv, axis=0)
            extra_t = blk[:, 0].copy()
            extra_o = OctantArray(blk[:, 1], blk[:, 2], blk[:, 3], blk[:, 4])
        else:
            extra_t, extra_o = None, None
        pf, changed = _forest_ripple(pf, connectivity, flo, fhi, extra_t, extra_o)
        if not comm.allreduce(changed, op="lor"):
            break
    else:
        raise RuntimeError("recursive forest balance did not converge")
    added = pf.global_count() - n0
    return pf, added, exchanges
