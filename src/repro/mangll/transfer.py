"""DG field transfer between nested forests (MANGLL's INTERPOLATEFIELDS).

When the forest is adapted, the elementwise polynomial solution must move
to the new element set:

- **refinement**: the child element is a sub-box of its parent, so the
  parent polynomial is *evaluated* at the child's LGL nodes — exact (the
  embedding of the polynomial space);
- **coarsening**: each new coarse node samples the value of whichever old
  child element contains it (nodal injection, the standard choice for
  collocation DG);
- **unchanged** elements copy their values.

Because both element boxes live in the same tree and are axis-aligned,
the evaluation operator factorizes into three 1-D Lagrange matrices
(Kronecker structure), one per axis.
"""

from __future__ import annotations

import numpy as np

from ..octree import morton_encode
from .lgl import lagrange_basis_at

__all__ = ["dg_transfer"]


def _eval_matrix(kern, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """(n^3, n^3) evaluation operator from an old element's nodal values
    to points at ``ref_new`` per axis, where the new element's reference
    coordinate r maps into the old element as ``scale * r + shift``."""
    g = kern.nodes
    mats = []
    for a in range(3):
        pts = scale[a] * g + shift[a]
        mats.append(lagrange_basis_at(g, pts))
    # node index = (z * n + y) * n + x  ->  kron(Bz, By, Bx)
    return np.kron(np.kron(mats[2], mats[1]), mats[0])


def dg_transfer(dg_old, u_old: np.ndarray, dg_new) -> np.ndarray:
    """Transfer a nodal DG field between two DGAdvection discretizations
    on nested forests of the same connectivity and equal order.

    Exact for refinement; nodal injection for coarsening.  Fully
    vectorized: one batched containing-leaf lookup per tree classifies
    every new element, refinement applies one evaluation operator per
    (level-delta, child-octant) group with a single batched matmul, and
    coarsening samples all nodes of all coarsened elements in one einsum.
    """
    if dg_old.p != dg_new.p:
        raise ValueError("transfer requires equal polynomial order")
    if dg_old.conn is not dg_new.conn and dg_old.conn.n_trees != dg_new.conn.n_trees:
        raise ValueError("transfer requires the same connectivity")
    kern = dg_new.kern
    n = kern.n
    n3 = dg_new.n3
    u_old = np.asarray(u_old, dtype=np.float64).reshape(dg_old.ne, dg_old.n3)
    out = np.empty((dg_new.ne, n3), dtype=np.float64)
    g = kern.nodes

    a2 = np.stack(
        [dg_new.octs.x, dg_new.octs.y, dg_new.octs.z], axis=1
    ).astype(np.int64)
    h2 = dg_new.octs.lengths().astype(np.int64)
    l2 = dg_new.octs.level.astype(np.int64)
    a1_all = np.stack(
        [dg_old.octs.x, dg_old.octs.y, dg_old.octs.z], axis=1
    ).astype(np.int64)
    h1_all = dg_old.octs.lengths().astype(np.int64)
    l1_all = dg_old.octs.level.astype(np.int64)
    old_keys = dg_old.octs.keys()

    # batched containing-old-leaf lookup of every new element's center
    center = a2 + (h2 // 2)[:, None]
    ck = morton_encode(center[:, 0], center[:, 1], center[:, 2])
    e1 = np.empty(dg_new.ne, dtype=np.int64)
    tree_bases: dict[int, tuple[int, np.ndarray]] = {}
    for t in np.unique(dg_new.tree_ids):
        sel_old = dg_old.tree_ids == t
        keys_t = old_keys[sel_old]
        base = int(np.flatnonzero(sel_old)[0])
        tree_bases[int(t)] = (base, keys_t)
        sel = dg_new.tree_ids == t
        e1[sel] = base + (np.searchsorted(keys_t, ck[sel], side="right") - 1)
    l1 = l1_all[e1]

    # unchanged elements: copy
    cp = np.flatnonzero(l1 == l2)
    out[cp] = u_old[e1[cp]]

    # refinement: one evaluation operator per (level-delta, child-octant)
    rf = np.flatnonzero(l1 < l2)
    if len(rf):
        da = a2[rf] - a1_all[e1[rf]]
        q = da // h2[rf, None]  # child position within the parent
        delta = l2[rf] - l1[rf]
        # compact group ids from (delta, qx, qy, qz)
        packed = (delta << 48) | (q[:, 0] << 32) | (q[:, 1] << 16) | q[:, 2]
        for pk in np.unique(packed):
            grp = rf[packed == pk]
            rep = grp[0]
            hp = h1_all[e1[rep]]
            ratio = h2[rep] / hp
            shift = (2.0 * (a2[rep] - a1_all[e1[rep]]) + h2[rep]) / hp - 1.0
            M = _eval_matrix(kern, np.full(3, ratio), shift)
            out[grp] = u_old[e1[grp]] @ M.T
    # coarsening: nodal injection, all elements and nodes in one sweep
    co = np.flatnonzero(l1 > l2)
    if len(co):
        T, S, R = np.meshgrid(g, g, g, indexing="ij")
        ref = np.stack([R.ravel(), S.ravel(), T.ravel()], axis=1)  # (n3, 3)
        pts = (
            a2[co][:, None, :].astype(np.float64)
            + (ref[None, :, :] + 1.0) * 0.5 * h2[co][:, None, None]
        )
        pint = np.minimum(
            pts.astype(np.int64), (a2[co] + h2[co][:, None] - 1)[:, None, :]
        )
        flat = pint.reshape(-1, 3)
        pk = morton_encode(flat[:, 0], flat[:, 1], flat[:, 2])
        tpt = np.repeat(dg_new.tree_ids[co], n3)
        eos = np.empty(len(flat), dtype=np.int64)
        for t in np.unique(dg_new.tree_ids[co]):
            base, keys_t = tree_bases[int(t)]
            s = tpt == t
            eos[s] = base + (np.searchsorted(keys_t, pk[s], side="right") - 1)
        loc = (
            2.0 * (pts.reshape(-1, 3) - a1_all[eos]) / h1_all[eos, None] - 1.0
        )
        loc = np.clip(loc, -1.0, 1.0)
        Bx = lagrange_basis_at(g, loc[:, 0])
        By = lagrange_basis_at(g, loc[:, 1])
        Bz = lagrange_basis_at(g, loc[:, 2])
        uo = u_old[eos].reshape(-1, n, n, n)
        vals = np.einsum("ma,mb,mc,mabc->m", Bz, By, Bx, uo)
        out[co] = vals.reshape(len(co), n3)
    return out.ravel()
