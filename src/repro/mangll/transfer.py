"""DG field transfer between nested forests (MANGLL's INTERPOLATEFIELDS).

When the forest is adapted, the elementwise polynomial solution must move
to the new element set:

- **refinement**: the child element is a sub-box of its parent, so the
  parent polynomial is *evaluated* at the child's LGL nodes — exact (the
  embedding of the polynomial space);
- **coarsening**: each new coarse node samples the value of whichever old
  child element contains it (nodal injection, the standard choice for
  collocation DG);
- **unchanged** elements copy their values.

Because both element boxes live in the same tree and are axis-aligned,
the evaluation operator factorizes into three 1-D Lagrange matrices
(Kronecker structure), one per axis.
"""

from __future__ import annotations

import numpy as np

from ..octree import morton_encode
from .lgl import lagrange_basis_at

__all__ = ["dg_transfer"]


def _eval_matrix(kern, scale: np.ndarray, shift: np.ndarray) -> np.ndarray:
    """(n^3, n^3) evaluation operator from an old element's nodal values
    to points at ``ref_new`` per axis, where the new element's reference
    coordinate r maps into the old element as ``scale * r + shift``."""
    g = kern.nodes
    mats = []
    for a in range(3):
        pts = scale[a] * g + shift[a]
        mats.append(lagrange_basis_at(g, pts))
    # node index = (z * n + y) * n + x  ->  kron(Bz, By, Bx)
    return np.kron(np.kron(mats[2], mats[1]), mats[0])


def dg_transfer(dg_old, u_old: np.ndarray, dg_new) -> np.ndarray:
    """Transfer a nodal DG field between two DGAdvection discretizations
    on nested forests of the same connectivity and equal order.

    Exact for refinement; nodal injection for coarsening.
    """
    if dg_old.p != dg_new.p:
        raise ValueError("transfer requires equal polynomial order")
    if dg_old.conn is not dg_new.conn and dg_old.conn.n_trees != dg_new.conn.n_trees:
        raise ValueError("transfer requires the same connectivity")
    kern = dg_new.kern
    n3 = dg_new.n3
    u_old = np.asarray(u_old, dtype=np.float64).reshape(dg_old.ne, dg_old.n3)
    out = np.empty((dg_new.ne, n3))

    # old element lookup per tree: sorted anchor keys
    old_tree_ids = dg_old.tree_ids
    old_keys = dg_old.octs.keys()

    # cache evaluation operators by (level difference, child position)
    cache: dict[tuple, np.ndarray] = {}

    g = kern.nodes
    for e2 in range(dg_new.ne):
        t = int(dg_new.tree_ids[e2])
        a2 = np.array([dg_new.octs.x[e2], dg_new.octs.y[e2], dg_new.octs.z[e2]])
        h2 = int(dg_new.octs.lengths()[e2])
        l2 = int(dg_new.octs.level[e2])
        # find the old leaf containing the new element's center
        ck = morton_encode(
            np.array([a2[0] + h2 // 2]), np.array([a2[1] + h2 // 2]),
            np.array([a2[2] + h2 // 2]),
        )
        sel = old_tree_ids == t
        keys_t = old_keys[sel]
        base = np.flatnonzero(sel)[0]
        e1 = base + int(np.searchsorted(keys_t, ck[0], side="right") - 1)
        l1 = int(dg_old.octs.level[e1])
        h1 = int(dg_old.octs.lengths()[e1])
        a1 = np.array([dg_old.octs.x[e1], dg_old.octs.y[e1], dg_old.octs.z[e1]])

        if l1 == l2:
            out[e2] = u_old[e1]
        elif l1 < l2:
            # refinement: evaluate the parent polynomial on the child box
            ratio = h2 / h1
            shift = (2.0 * (a2 - a1) + h2) / h1 - 1.0
            key = (l2 - l1, tuple(((a2 - a1) // h2).tolist()))
            M = cache.get(key)
            if M is None:
                M = _eval_matrix(kern, np.full(3, ratio), shift)
                cache[key] = M
            out[e2] = M @ u_old[e1]
        else:
            # coarsening: sample each new node from the old child that
            # contains it
            vals = np.empty(n3)
            # new node tree coordinates
            T, S, R = np.meshgrid(g, g, g, indexing="ij")
            ref = np.stack([R.ravel(), S.ravel(), T.ravel()], axis=1)
            pts = a2 + (ref + 1.0) * 0.5 * h2  # float tree coords
            pint = np.minimum(pts.astype(np.int64), a2 + h2 - 1)
            pk = morton_encode(pint[:, 0], pint[:, 1], pint[:, 2])
            eos = base + (np.searchsorted(keys_t, pk, side="right") - 1)
            for eo in np.unique(eos):
                m = eos == eo
                ho = int(dg_old.octs.lengths()[eo])
                ao = np.array(
                    [dg_old.octs.x[eo], dg_old.octs.y[eo], dg_old.octs.z[eo]]
                )
                loc = 2.0 * (pts[m] - ao) / ho - 1.0
                loc = np.clip(loc, -1.0, 1.0)
                Bx = lagrange_basis_at(g, loc[:, 0])
                By = lagrange_basis_at(g, loc[:, 1])
                Bz = lagrange_basis_at(g, loc[:, 2])
                uo = u_old[eo].reshape(kern.n, kern.n, kern.n)
                vals[m] = np.einsum("ma,mb,mc,abc->m", Bz, By, Bx, uo)
            out[e2] = vals
    return out.ravel()
