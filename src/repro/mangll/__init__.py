"""MANGLL: high-order nodal DG on hexahedral spectral elements (Sec. VII)."""

from .dg import DGAdvection, solid_body_rotation
from .lgl import diff_matrix, lagrange_basis_at, lagrange_matrix, lgl_nodes
from .tensor import DerivativeKernel, matrix_flops, tensor_flops
from .transfer import dg_transfer

__all__ = [
    "DGAdvection",
    "solid_body_rotation",
    "lgl_nodes",
    "diff_matrix",
    "lagrange_matrix",
    "lagrange_basis_at",
    "DerivativeKernel",
    "matrix_flops",
    "tensor_flops",
    "dg_transfer",
]
