"""Legendre-Gauss-Lobatto nodes, weights, and 1-D spectral operators.

MANGLL's spectral elements place nodes at the tensor product of LGL points
and integrate with LGL quadrature, "which reduces the block diagonal DG
mass matrix to a diagonal" (Section VII).  This module supplies the 1-D
ingredients: nodes/weights, the differentiation matrix, and Lagrange
interpolation matrices (used both for nonconforming face integration and
for AMR projection between levels).
"""

from __future__ import annotations

import numpy as np
from numpy.polynomial import legendre as npleg

__all__ = [
    "lgl_nodes",
    "diff_matrix",
    "lagrange_matrix",
    "lagrange_basis_at",
]


def lgl_nodes(p: int) -> tuple[np.ndarray, np.ndarray]:
    """LGL nodes and quadrature weights on [-1, 1] for polynomial order
    ``p`` (``p + 1`` nodes).  Exact for polynomials of degree ``2p - 1``.
    """
    if p < 1:
        raise ValueError("order must be >= 1")
    if p == 1:
        return np.array([-1.0, 1.0], dtype=np.float64), np.array([1.0, 1.0], dtype=np.float64)
    # interior nodes: roots of P'_p
    cp = np.zeros(p + 1, dtype=np.float64)
    cp[p] = 1.0
    dcp = npleg.legder(cp)
    interior = npleg.legroots(dcp)
    x = np.concatenate([[-1.0], np.sort(interior), [1.0]])
    Pp = npleg.legval(x, cp)
    w = 2.0 / (p * (p + 1) * Pp**2)
    return x, w


def lagrange_basis_at(nodes: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """(len(pts), len(nodes)) matrix of Lagrange basis values: row ``i``
    evaluates all node-basis polynomials at ``pts[i]``."""
    nodes = np.asarray(nodes, dtype=np.float64)
    pts = np.asarray(pts, dtype=np.float64)
    n = len(nodes)
    out = np.ones((len(pts), n))
    for j in range(n):
        for k in range(n):
            if k != j:
                out[:, j] *= (pts - nodes[k]) / (nodes[j] - nodes[k])
    return out


def lagrange_matrix(nodes_from: np.ndarray, nodes_to: np.ndarray) -> np.ndarray:
    """Interpolation matrix from values at ``nodes_from`` to values at
    ``nodes_to`` (alias of :func:`lagrange_basis_at` with clearer intent)."""
    return lagrange_basis_at(nodes_from, nodes_to)


def diff_matrix(nodes: np.ndarray) -> np.ndarray:
    """Spectral differentiation matrix on arbitrary distinct nodes
    (barycentric formula)."""
    x = np.asarray(nodes, dtype=np.float64)
    n = len(x)
    # barycentric weights
    w = np.ones(n)
    for j in range(n):
        for k in range(n):
            if k != j:
                w[j] /= x[j] - x[k]
    D = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(n):
            if i != j:
                D[i, j] = (w[j] / w[i]) / (x[i] - x[j])
        D[i, i] = -D[i].sum()
    return D
