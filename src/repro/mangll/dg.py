"""Nodal discontinuous Galerkin advection on forests of octrees.

The MANGLL layer of Section VII: arbitrary-order nodal DG on hexahedral
spectral elements with LGL collocation (diagonal mass), upwind numerical
fluxes, and nonconforming (2:1) faces handled by a *face integration mesh*:
the surface integral of a coarse-fine face pair is evaluated on the finer
side's quadrature points, with both traces interpolated there and the
coarse-side lift applied through the transpose of the interpolation — the
paper's "integrates the contributions from each smaller face individually".

Geometry is the trilinear map of each connectivity tree composed with the
leaf's scaling, so the same code runs on the unit cube, multiblock bricks,
and the 24-tree cubed-sphere shell.

Face-node correspondence across trees (including rotated coordinate
systems between cubed-sphere caps) is resolved with the exact lattice
transforms of the connectivity; interpolation matrices are generic tensor
Lagrange evaluations, so conforming faces, rotated faces, and mortar faces
are all instances of the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..forest import Connectivity, Forest
from ..octree import OctantArray, ROOT_LEN
from ..solvers.timestep import LowStorageRK45
from .lgl import lagrange_basis_at
from .tensor import DerivativeKernel

__all__ = ["DGAdvection", "solid_body_rotation"]

_FACE_AXIS_SIDE = [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]


def solid_body_rotation(omega=(0.0, 0.0, 1.0)) -> Callable[[np.ndarray], np.ndarray]:
    """Velocity field ``a(x) = omega x x`` — divergence-free and tangent to
    spheres, the natural test wind for the spherical shell."""
    om = np.asarray(omega, dtype=np.float64)

    def a(x: np.ndarray) -> np.ndarray:
        return np.cross(np.broadcast_to(om, x.shape), x)

    return a


def _face_node_indices(n: int) -> list[np.ndarray]:
    """For each of the 6 faces, the n^2 indices into the flattened n^3
    element node block, ordered with the lower tangent axis fastest."""
    idx3 = np.arange(n**3).reshape(n, n, n)  # [t, s, r] = [z, y, x]
    out = []
    for axis, side in _FACE_AXIS_SIDE:
        sl = [slice(None)] * 3
        sl[2 - axis] = -1 if side else 0  # array axes are (z, y, x)
        sub = idx3[tuple(sl)]  # 2-D, remaining axes in (slower, faster) order
        out.append(np.ascontiguousarray(sub).ravel())
    return out


@dataclass
class _FaceBatch:
    """Vectorized face-instance arrays (one batch = all interior faces)."""

    mine: np.ndarray      # (ni, n2) global node ids of my face nodes
    nb: np.ndarray        # (ni, n2) neighbor face node ids
    Mq: np.ndarray        # (ni, n2, n2) my-face-nodes -> quad points
    Mn: np.ndarray        # (ni, n2, n2) neighbor-face-nodes -> quad points
    wsj: np.ndarray       # (ni, n2) w2d * surface Jacobian at quad points
    an: np.ndarray        # (ni, n2) a . n (outward from me) at quad points
    xq: np.ndarray        # (ni, n2, 3) quad physical points


class DGAdvection:
    """Semi-discrete DG advection operator ``du/dt = L(u)`` on a forest.

    Parameters
    ----------
    forest:
        A complete, 2:1 balanced forest.
    p:
        Polynomial order (>= 1).
    velocity:
        Callable ``a(x)`` mapping (m, 3) points to (m, 3) velocities;
        evaluated once at setup (static wind).
    inflow:
        Callable giving the exterior trace on forest-boundary faces
        (default zero).
    variant:
        ``"tensor"`` or ``"matrix"`` derivative kernel (Section VII).
    batch_faces:
        When True (default), same-tree faces are classified and built
        with array operations (one batched neighbor probe per tree and
        face direction); only cross-tree faces go through the per-face
        loop.  False forces the per-face loop everywhere — the
        pre-vectorization path, kept as the equivalence oracle.
    face_algorithm:
        ``"recursive"`` (default) classifies same-tree faces by
        descriptor sort-merge joins (:func:`repro.forest.faces.match_faces`)
        instead of per-direction containment probes; ``"search"`` keeps
        the probe classifier.  Bitwise-identical operators; only the
        batched path is affected.
    """

    def __init__(
        self,
        forest: Forest,
        p: int,
        velocity: Callable[[np.ndarray], np.ndarray],
        inflow: Callable[[np.ndarray], np.ndarray] | None = None,
        variant: str = "tensor",
        batch_faces: bool = True,
        face_algorithm: str = "recursive",
    ):
        self.forest = forest
        self.conn: Connectivity = forest.conn
        self.p = p
        self.variant = variant
        self.batch_faces = batch_faces
        if face_algorithm not in ("recursive", "search"):
            raise ValueError(f"unknown face algorithm {face_algorithm!r}")
        self.face_algorithm = face_algorithm
        self.kern = DerivativeKernel(p)
        n = p + 1
        self.n = n
        self.n3 = n**3
        self.n2 = n**2
        self.inflow = inflow or (lambda x: np.zeros(len(x), dtype=np.float64))

        # flatten elements
        self.tree_ids = forest.leaf_tree_ids()
        self.octs = OctantArray.concat([t.leaves for t in forest.trees])
        self.ne = len(self.octs)
        self._offsets = forest.tree_offsets()

        self._face_idx = _face_node_indices(n)
        self._build_geometry(velocity)
        self._build_faces(velocity)
        self._rk = LowStorageRK45()

    # -- geometry -----------------------------------------------------------------

    def _leaf_tree_coords(self, eids: np.ndarray, ref: np.ndarray) -> np.ndarray:
        """Map per-element reference points (m, 3) in [-1,1]^3 of elements
        ``eids`` to tree-frame coordinates in [0, 1]^3 * ROOT_LEN floats.

        ``ref`` may be (m, 3) with one row per entry of ``eids``.
        """
        h = self.octs.lengths()[eids].astype(np.float64)
        anchors = np.stack(
            [self.octs.x[eids], self.octs.y[eids], self.octs.z[eids]], axis=1
        ).astype(np.float64)
        return anchors + (ref + 1.0) * 0.5 * h[:, None]

    def _build_geometry(self, velocity) -> None:
        n, n3, ne = self.n, self.n3, self.ne
        g = self.kern.nodes  # 1-D LGL on [-1, 1]
        # volume node reference coords, C order [t, s, r]
        T, S, R = np.meshgrid(g, g, g, indexing="ij")
        ref = np.stack([R.ravel(), S.ravel(), T.ravel()], axis=1)  # (n3, 3)
        eids = np.repeat(np.arange(ne), n3)
        ref_all = np.tile(ref, (ne, 1))
        tree_coords = self._leaf_tree_coords(eids, ref_all) / ROOT_LEN  # in [0,1]
        # physical nodes + tree Jacobians, tree by tree
        self.x = np.empty((ne * n3, 3), dtype=np.float64)
        Jtree = np.empty((ne * n3, 3, 3), dtype=np.float64)
        tids_pernode = np.repeat(self.tree_ids, n3)
        for t in np.unique(self.tree_ids):
            sel = tids_pernode == t
            self.x[sel] = self.conn.tree_map(t, tree_coords[sel])
            Jtree[sel] = self.conn.tree_map_jacobian(t, tree_coords[sel])
        # compose with leaf scaling: d(tree_ref)/d(leaf_local) = h_frac / 2
        hfrac = (self.octs.lengths().astype(np.float64) / ROOT_LEN)[eids] * 0.5
        J = Jtree * hfrac[:, None, None]
        self.detJ = np.linalg.det(J)
        if np.any(self.detJ <= 0):
            raise AssertionError("non-positive element Jacobian")
        self.Jinv = np.linalg.inv(J)  # rows: d(ref_k)/d(x)
        w3 = np.einsum(
            "i,j,k->ijk", self.kern.weights, self.kern.weights, self.kern.weights
        ).ravel()
        self.Mdiag = (np.tile(w3, ne) * self.detJ).reshape(ne, n3)
        # advection coefficients c_k = a . grad(ref_k) at volume nodes
        a = velocity(self.x)
        self.cvec = np.einsum("mkd,md->mk", self.Jinv, a).reshape(ne, n3, 3)

    # -- face construction -----------------------------------------------------------

    def _neighbor_info(self, e: int, f: int):
        """Find the neighbor(s) of element e across face f.

        Returns ``None`` (forest boundary), or a list of
        ``(nb_elem, driving_side)`` where driving_side is the finer side
        element whose face points define the quadrature.
        """
        axis, side = _FACE_AXIS_SIDE[f]
        tid = self.tree_ids[e]
        h = int(self.octs.lengths()[e])
        anchor = np.array([self.octs.x[e], self.octs.y[e], self.octs.z[e]], dtype=np.int64)
        lvl = int(self.octs.level[e])
        d = np.zeros(3, dtype=np.int64)
        d[axis] = 1 if side else -1
        center = anchor + h // 2 + d * h
        t_nb, l_nb = self.forest.neighbor_leaf(tid, center[None, :])
        if t_nb[0] < 0:
            return None
        nb_lvl = int(self.forest.trees[t_nb[0]].levels[l_nb[0]])
        ge = self._offsets[t_nb[0]] + l_nb[0]
        if nb_lvl <= lvl:
            # conforming or I'm the fine side: my face drives
            return [(int(ge), e)]
        # I'm the coarse side: locate the 4 fine sub-neighbors
        out = []
        t1, t2 = [a2 for a2 in range(3) if a2 != axis]
        for j2 in range(2):
            for j1 in range(2):
                # sample the center of each quarter of my face, pushed h/4
                # beyond it — lands inside one of the 4 fine neighbors
                q = anchor + h // 2 + d * (h // 2 + h // 4)
                q[t1] = anchor[t1] + h // 4 + j1 * (h // 2)
                q[t2] = anchor[t2] + h // 4 + j2 * (h // 2)
                tq, lq = self.forest.neighbor_leaf(tid, q[None, :])
                if tq[0] < 0:
                    raise AssertionError("fine neighbor lookup failed")
                out.append((int(self._offsets[tq[0]] + lq[0]), int(self._offsets[tq[0]] + lq[0])))
        return out

    def _face_st(self, e: int, f: int, pts_tree: np.ndarray) -> np.ndarray:
        """Convert tree-frame float points lying on face f of element e to
        that face's local (s, t) in [-1, 1]^2 (lower tangent axis first)."""
        axis, _ = _FACE_AXIS_SIDE[f]
        t1, t2 = [a2 for a2 in range(3) if a2 != axis]
        h = float(self.octs.lengths()[e])
        anchor = np.array(
            [self.octs.x[e], self.octs.y[e], self.octs.z[e]], dtype=np.float64
        )
        loc = 2.0 * (pts_tree - anchor) / h - 1.0
        st = np.stack([loc[:, t1], loc[:, t2]], axis=1)
        if np.any(np.abs(st) > 1 + 1e-9):
            raise AssertionError("face point outside element face")
        return np.clip(st, -1.0, 1.0)

    def _interp_from_face(self, st: np.ndarray) -> np.ndarray:
        """(m, n2) interpolation from a face's nodal values (2-D order
        t1-fastest) to points ``st``."""
        A = lagrange_basis_at(self.kern.nodes, st[:, 0])  # (m, n) along t1
        B = lagrange_basis_at(self.kern.nodes, st[:, 1])  # (m, n) along t2
        m = len(st)
        return np.einsum("ma,mb->mba", A, B).reshape(m, self.n2)

    def _face_quad_tree_coords(self, e: int, f: int) -> np.ndarray:
        """Tree-frame float coords of element e's face-f LGL nodes."""
        axis, side = _FACE_AXIS_SIDE[f]
        g = self.kern.nodes
        t1, t2 = [a2 for a2 in range(3) if a2 != axis]
        S2, S1 = np.meshgrid(g, g, indexing="ij")  # t2 slower, t1 faster
        ref = np.empty((self.n2, 3), dtype=np.float64)
        ref[:, axis] = 1.0 if side else -1.0
        ref[:, t1] = S1.ravel()
        ref[:, t2] = S2.ravel()
        eids = np.full(self.n2, e)
        return self._leaf_tree_coords(eids, ref)

    def _to_frame(self, tid_from: int, tid_to: int, pts: np.ndarray, via_face: int) -> np.ndarray:
        """Map float tree coords between adjacent tree frames (identity
        within a tree, lattice transform across the given face)."""
        if tid_from == tid_to:
            return pts
        fc = self.conn.face_connections[tid_from][via_face]
        if fc is None or fc.neighbor_tree != tid_to:
            raise AssertionError("no face connection to target tree")
        R = np.array(fc.R, dtype=np.float64)
        o = np.array(fc.o, dtype=np.float64)
        return pts @ R.T + o

    def _surface_metric(self, e: int, f: int, quad_tree: np.ndarray):
        """Surface Jacobian and outward unit normal at face quad points
        (given in e's tree frame), using element e's geometry."""
        axis, side = _FACE_AXIS_SIDE[f]
        tid = self.tree_ids[e]
        ref01 = quad_tree / ROOT_LEN
        Jt = self.conn.tree_map_jacobian(tid, ref01)
        hfrac = float(self.octs.lengths()[e]) / ROOT_LEN * 0.5
        J = Jt * hfrac
        detJ = np.linalg.det(J)
        Jinv = np.linalg.inv(J)
        nref = np.zeros(3, dtype=np.float64)
        nref[axis] = 1.0 if side else -1.0
        nvec = np.einsum("mkd,k->md", Jinv, nref) * detJ[:, None]
        sj = np.linalg.norm(nvec, axis=1)
        normal = nvec / sj[:, None]
        return sj, normal

    def _build_faces(self, velocity) -> None:
        interior = {k: [] for k in ("mine", "nb", "Mq", "Mn", "wsj", "an", "xq", "key")}
        bdry = {k: [] for k in ("mine", "wsj", "an", "uin", "key")}
        if self.batch_faces:
            self._build_faces_batched(velocity, interior, bdry)
        else:
            for e in range(self.ne):  # lint: allow-loop (pre-vectorization path)
                for f in range(6):
                    self._build_face_single(e, f, velocity, interior, bdry)
        self._finalize_faces(interior, bdry)

    def _build_face_single(self, e: int, f: int, velocity, interior, bdry) -> None:
        """Per-face instance construction (the pre-vectorization path;
        the batched builder delegates cross-tree faces here).  Appends
        instance arrays with a leading singleton axis plus a ``key``
        ``e * 6 + f`` so instances can be merged in canonical order."""
        n2 = self.n2
        w2 = np.einsum("i,j->ij", self.kern.weights, self.kern.weights).ravel()
        eye = np.eye(n2)
        tid = int(self.tree_ids[e])
        info = self._neighbor_info(e, f)
        mine_nodes = e * self.n3 + self._face_idx[f]
        if info is None:
            quad = self._face_quad_tree_coords(e, f)
            sj, normal = self._surface_metric(e, f, quad)
            xq = self.conn.tree_map(tid, quad / ROOT_LEN)
            an = np.einsum("md,md->m", velocity(xq), normal)
            bdry["mine"].append(mine_nodes[None])
            bdry["wsj"].append((w2 * sj)[None])
            bdry["an"].append(an[None])
            bdry["uin"].append(np.asarray(self.inflow(xq))[None])
            bdry["key"].append(np.array([e * 6 + f], dtype=np.int64))
            return
        for ge, driver in info:
            tid_nb = int(self.tree_ids[ge])
            if driver == e:
                # quadrature on my own face points
                quad_mine = self._face_quad_tree_coords(e, f)
                Mq = eye
                # neighbor's matching face: which face of ge?
                quad_nb = self._to_frame(tid, tid_nb, quad_mine, f)
                fnb = self._facing_face(ge, quad_nb)
                st_nb = self._face_st(ge, fnb, quad_nb)
                Mn = self._interp_from_face(st_nb)
                quad = quad_mine
            else:
                # neighbor (fine side) drives: its face points
                fnb = self._facing_face_of_neighbor(e, f, ge)
                quad_nb = self._face_quad_tree_coords(ge, fnb)
                quad = self._to_frame(tid_nb, tid, quad_nb, fnb)
                st_mine = self._face_st(e, f, quad)
                Mq = self._interp_from_face(st_mine)
                Mn = eye
            sj, normal = self._surface_metric(e, f, quad)
            xq = self.conn.tree_map(tid, quad / ROOT_LEN)
            an = np.einsum("md,md->m", velocity(xq), normal)
            interior["mine"].append(mine_nodes[None])
            interior["nb"].append((ge * self.n3 + self._face_idx[fnb])[None])
            interior["Mq"].append(Mq[None])
            interior["Mn"].append(Mn[None])
            interior["wsj"].append((w2 * sj)[None])
            interior["an"].append(an[None])
            interior["xq"].append(xq[None])
            interior["key"].append(np.array([e * 6 + f], dtype=np.int64))

    # -- batched face construction -------------------------------------------

    def _face_ref_coords(self, f: int) -> np.ndarray:
        """(n2, 3) reference coords of face f's LGL nodes (t1 fastest) —
        the batched twin of :meth:`_face_quad_tree_coords`'s ref block."""
        axis, side = _FACE_AXIS_SIDE[f]
        g = self.kern.nodes
        t1, t2 = [a2 for a2 in range(3) if a2 != axis]
        S2, S1 = np.meshgrid(g, g, indexing="ij")
        ref = np.empty((self.n2, 3), dtype=np.float64)
        ref[:, axis] = 1.0 if side else -1.0
        ref[:, t1] = S1.ravel()
        ref[:, t2] = S2.ravel()
        return ref

    def _batched_metric(self, E: np.ndarray, f: int, quad: np.ndarray):
        """Vectorized :meth:`_surface_metric` for faces of elements ``E``
        (quad: (m, n2, 3) tree-frame points, each in its element's tree)."""
        axis, side = _FACE_AXIS_SIDE[f]
        m = len(E)
        n2 = self.n2
        ref01 = (quad / ROOT_LEN).reshape(m * n2, 3)
        tpt = np.repeat(self.tree_ids[E], n2)
        Jt = np.empty((m * n2, 3, 3), dtype=np.float64)
        for t in np.unique(tpt):
            s = tpt == t
            Jt[s] = self.conn.tree_map_jacobian(int(t), ref01[s])
        hfrac = np.repeat(
            self.octs.lengths()[E].astype(np.float64) / ROOT_LEN * 0.5, n2
        )
        J = Jt * hfrac[:, None, None]
        detJ = np.linalg.det(J)
        Jinv = np.linalg.inv(J)
        nref = np.zeros(3, dtype=np.float64)
        nref[axis] = 1.0 if side else -1.0
        nvec = np.einsum("mkd,k->md", Jinv, nref) * detJ[:, None]
        sj = np.linalg.norm(nvec, axis=1)
        normal = nvec / sj[:, None]
        return sj.reshape(m, n2), normal.reshape(m, n2, 3)

    def _batched_phys(self, E: np.ndarray, quad: np.ndarray) -> np.ndarray:
        """Vectorized tree-map of (m, n2, 3) tree-frame face points."""
        m, n2 = quad.shape[0], self.n2
        pts = (quad / ROOT_LEN).reshape(m * n2, 3)
        tpt = np.repeat(self.tree_ids[E], n2)
        out = np.empty((m * n2, 3), dtype=np.float64)
        for t in np.unique(tpt):
            s = tpt == t
            out[s] = self.conn.tree_map(int(t), pts[s])
        return out.reshape(m, n2, 3)

    def _batched_interp(self, st: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_interp_from_face`: (m, n2, 2) -> (m, n2, n2)."""
        m = st.shape[0]
        flat = st.reshape(m * self.n2, 2)
        A = lagrange_basis_at(self.kern.nodes, flat[:, 0])
        B = lagrange_basis_at(self.kern.nodes, flat[:, 1])
        M = np.einsum("ma,mb->mba", A, B).reshape(m * self.n2, self.n2)
        return M.reshape(m, self.n2, self.n2)

    def _build_faces_batched(self, velocity, interior, bdry) -> None:
        """Array-op face construction: classify every (element, face) with
        one batched neighbor probe per (tree, direction), then build
        boundary / conforming / fine-driver batches per direction without
        per-face Python work.  Cross-tree faces (rotated frames, inter-tree
        mortars) fall through to :meth:`_build_face_single`."""
        n2, n3, ne = self.n2, self.n3, self.ne
        octs = self.octs
        hi = octs.lengths().astype(np.int64)
        ai = np.stack([octs.x, octs.y, octs.z], axis=1).astype(np.int64)
        hf = hi.astype(np.float64)
        af = ai.astype(np.float64)
        lvl = octs.level.astype(np.int64)
        tids = self.tree_ids
        w2 = np.einsum("i,j->ij", self.kern.weights, self.kern.weights).ravel()
        eye = np.eye(n2)

        if self.face_algorithm == "recursive":
            # sort-merge joins on face descriptors classify every face —
            # and resolve coarse-face sub-neighbors — with no probes
            from ..forest.faces import match_faces

            fcls = match_faces(tids, octs, self.conn)
            valid, same = fcls.valid, fcls.same
            idrive, coarse = fcls.idrive, fcls.coarse
            g_nb, subs_all = fcls.g_nb, fcls.subs
        else:
            # one probe per (tree, direction) classifies all faces at once
            t_nb = np.full((ne, 6), -1, dtype=np.int64)
            g_nb = np.zeros((ne, 6), dtype=np.int64)
            utrees = np.unique(tids)
            for f in range(6):
                axis, side = _FACE_AXIS_SIDE[f]
                d = np.zeros(3, dtype=np.int64)
                d[axis] = 1 if side else -1
                centers = ai + (hi // 2)[:, None] + d[None, :] * hi[:, None]
                for t in utrees:
                    sel = np.flatnonzero(tids == t)
                    tt, ll = self.forest.neighbor_leaf(int(t), centers[sel])
                    t_nb[sel, f] = tt
                    ok = tt >= 0
                    g_nb[sel[ok], f] = self._offsets[tt[ok]] + ll[ok]

            valid = t_nb >= 0
            same = valid & (t_nb == tids[:, None])
            nblvl = lvl[g_nb]
            idrive = same & (nblvl <= lvl[:, None])
            coarse = same & (nblvl > lvl[:, None])
            subs_all = None

        fallback: list[tuple[int, int]] = [
            (int(e), int(f)) for e, f in zip(*np.nonzero(valid & ~same))
        ]

        def face_quads(E, f):
            # identical arithmetic to _leaf_tree_coords on face ref points
            ref = self._face_ref_coords(f)
            return af[E][:, None, :] + (ref[None, :, :] + 1.0) * 0.5 * hf[E][
                :, None, None
            ]

        def emit_interior(E, G, f, fnb, quad, Mq, Mn):
            sj, normal = self._batched_metric(E, f, quad)
            xq = self._batched_phys(E, quad)
            v = np.asarray(velocity(xq.reshape(-1, 3))).reshape(len(E), n2, 3)
            interior["mine"].append(E[:, None] * n3 + self._face_idx[f][None, :])
            interior["nb"].append(G[:, None] * n3 + self._face_idx[fnb][None, :])
            interior["Mq"].append(Mq)
            interior["Mn"].append(Mn)
            interior["wsj"].append(w2[None, :] * sj)
            interior["an"].append(np.einsum("mqd,mqd->mq", v, normal))
            interior["xq"].append(xq)
            interior["key"].append(E * 6 + f)

        for f in range(6):
            axis, side = _FACE_AXIS_SIDE[f]
            t1, t2 = [a2 for a2 in range(3) if a2 != axis]
            fnb = f ^ 1  # same-tree frames are aligned

            # boundary faces of this direction
            E = np.flatnonzero(~valid[:, f])
            if len(E):
                quad = face_quads(E, f)
                sj, normal = self._batched_metric(E, f, quad)
                xq = self._batched_phys(E, quad)
                v = np.asarray(velocity(xq.reshape(-1, 3))).reshape(len(E), n2, 3)
                bdry["mine"].append(E[:, None] * n3 + self._face_idx[f][None, :])
                bdry["wsj"].append(w2[None, :] * sj)
                bdry["an"].append(np.einsum("mqd,mqd->mq", v, normal))
                bdry["uin"].append(
                    np.asarray(self.inflow(xq.reshape(-1, 3))).reshape(len(E), n2)
                )
                bdry["key"].append(E * 6 + f)

            # conforming / fine-side faces: my face points drive
            E = np.flatnonzero(idrive[:, f])
            if len(E):
                G = g_nb[E, f]
                quad = face_quads(E, f)
                loc = 2.0 * (quad - af[G][:, None, :]) / hf[G][:, None, None] - 1.0
                st = loc[:, :, [t1, t2]]
                if np.any(np.abs(st) > 1 + 1e-9):
                    raise AssertionError("face point outside element face")
                st = np.clip(st, -1.0, 1.0)
                Mn = self._batched_interp(st)
                Mq = np.broadcast_to(eye, (len(E), n2, n2))
                emit_interior(E, G, f, fnb, quad, Mq, Mn)

            # coarse-side faces: each of the 4 fine neighbors drives
            E = np.flatnonzero(coarse[:, f])
            if len(E):
                if subs_all is not None:
                    # matched path: sub-neighbors already resolved, always
                    # in-tree (cross-tree coarse faces went to fallback)
                    subs = [
                        (tids[subs_all[E, f, q]], subs_all[E, f, q])
                        for q in range(4)
                    ]
                    okall = np.ones(len(E), dtype=bool)
                else:
                    d = np.zeros(3, dtype=np.int64)
                    d[axis] = 1 if side else -1
                    base = (
                        ai[E]
                        + (hi[E] // 2)[:, None]
                        + d[None, :] * (hi[E] // 2 + hi[E] // 4)[:, None]
                    )
                    subs = []
                    okall = np.ones(len(E), dtype=bool)
                    for j2 in range(2):
                        for j1 in range(2):
                            q = base.copy()
                            q[:, t1] = ai[E, t1] + hi[E] // 4 + j1 * (hi[E] // 2)
                            q[:, t2] = ai[E, t2] + hi[E] // 4 + j2 * (hi[E] // 2)
                            tq = np.full(len(E), -1, dtype=np.int64)
                            gq = np.zeros(len(E), dtype=np.int64)
                            for t in np.unique(tids[E]):
                                s = np.flatnonzero(tids[E] == t)
                                tt, ll = self.forest.neighbor_leaf(int(t), q[s])
                                tq[s] = tt
                                ok = tt >= 0
                                gq[s[ok]] = self._offsets[tt[ok]] + ll[ok]
                            subs.append((tq, gq))
                            okall &= tq == tids[E]
                Eb = E[okall]
                if len(Eb):
                    for tq, gq in subs:
                        G = gq[okall]
                        quad = face_quads(G, fnb)  # fine neighbor's face nodes
                        loc = (
                            2.0 * (quad - af[Eb][:, None, :]) / hf[Eb][:, None, None]
                            - 1.0
                        )
                        st = loc[:, :, [t1, t2]]
                        if np.any(np.abs(st) > 1 + 1e-9):
                            raise AssertionError("face point outside element face")
                        st = np.clip(st, -1.0, 1.0)
                        Mq = self._batched_interp(st)
                        Mn = np.broadcast_to(eye, (len(Eb), n2, n2))
                        emit_interior(Eb, G, f, fnb, quad, Mq, Mn)
                fallback.extend((int(e), f) for e in E[~okall])

        for e, f in fallback:
            self._build_face_single(e, f, velocity, interior, bdry)

    def _finalize_faces(self, interior, bdry) -> None:
        """Merge instance batches in canonical (element, face, sub) order
        so flux accumulation order — and hence floating-point results —
        matches the per-face loop exactly."""

        def merge(d, names):
            key = np.concatenate(d["key"])
            order = np.argsort(key, kind="stable")
            return {k: np.concatenate(d[k], axis=0)[order] for k in names}

        if interior["key"]:
            si = merge(interior, ("mine", "nb", "Mq", "Mn", "wsj", "an", "xq"))
            self.faces = _FaceBatch(
                mine=si["mine"].astype(np.int64),
                nb=si["nb"].astype(np.int64),
                Mq=si["Mq"],
                Mn=si["Mn"],
                wsj=si["wsj"],
                an=si["an"],
                xq=si["xq"],
            )
        else:
            self.faces = None
        if bdry["key"]:
            sb = merge(bdry, ("mine", "wsj", "an", "uin"))
            self.bfaces = {
                "mine": sb["mine"].astype(np.int64),
                "wsj": sb["wsj"],
                "an": sb["an"],
                "uin": sb["uin"],
            }
        else:
            self.bfaces = None

    def _facing_face(self, ge: int, quad_in_nb_frame: np.ndarray) -> int:
        """Which face of element ge the quad points lie on."""
        h = float(self.octs.lengths()[ge])
        anchor = np.array(
            [self.octs.x[ge], self.octs.y[ge], self.octs.z[ge]], dtype=np.float64
        )
        loc = (quad_in_nb_frame - anchor) / h
        for axis in range(3):
            if np.all(np.abs(loc[:, axis]) < 1e-9):
                return 2 * axis
            if np.all(np.abs(loc[:, axis] - 1.0) < 1e-9):
                return 2 * axis + 1
        raise AssertionError("quad points not on any face of the neighbor")

    def _facing_face_of_neighbor(self, e: int, f: int, ge: int) -> int:
        """Face id of neighbor ``ge`` that glues to face f of element e."""
        tid, tid_nb = int(self.tree_ids[e]), int(self.tree_ids[ge])
        # probe: center of my face pushed slightly outward lies inside ge;
        # classify by locating my face's quad points in ge's frame
        quad_mine = self._face_quad_tree_coords(e, f)
        quad_nb = self._to_frame(tid, tid_nb, quad_mine, f)
        h = float(self.octs.lengths()[ge])
        anchor = np.array(
            [self.octs.x[ge], self.octs.y[ge], self.octs.z[ge]], dtype=np.float64
        )
        loc = (quad_nb - anchor) / h
        # my (coarse) face covers ge's full face; find the axis pinned to 0/1
        for axis in range(3):
            if np.all(np.abs(loc[:, axis]) < 1e-9):
                return 2 * axis
            if np.all(np.abs(loc[:, axis] - 1.0) < 1e-9):
                return 2 * axis + 1
        raise AssertionError("could not identify the facing face")

    # -- operator ---------------------------------------------------------------------

    @property
    def n_dof(self) -> int:
        return self.ne * self.n3

    def nodes(self) -> np.ndarray:
        """(n_dof, 3) physical node coordinates."""
        return self.x

    def rate(self, u: np.ndarray, t: float = 0.0) -> np.ndarray:
        """du/dt = -a . grad(u) - lift(upwind flux jumps)."""
        ue = u.reshape(self.ne, self.n3)
        dr, ds, dt_ = self.kern.gradient(ue, self.variant)
        adv = (
            self.cvec[:, :, 0] * dr + self.cvec[:, :, 1] * ds + self.cvec[:, :, 2] * dt_
        )
        # the chain-rule volume term is already pointwise; only the surface
        # lift carries the inverse mass
        res = -adv.ravel()
        minv = 1.0 / self.Mdiag.ravel()
        if self.faces is not None:
            fb = self.faces
            um = np.einsum("iqk,ik->iq", fb.Mq, u[fb.mine])
            up = np.einsum("iqk,ik->iq", fb.Mn, u[fb.nb])
            # upwind: f* - f^- = min(a.n, 0) (u+ - u-)
            diff = np.minimum(fb.an, 0.0) * (up - um)
            lift = np.einsum("iqk,iq->ik", fb.Mq, fb.wsj * diff)
            np.subtract.at(res, fb.mine.ravel(), (lift * minv[fb.mine]).ravel())
        if self.bfaces is not None:
            bf = self.bfaces
            um = u[bf["mine"]]
            diff = np.minimum(bf["an"], 0.0) * (bf["uin"] - um)
            np.subtract.at(
                res, bf["mine"].ravel(), (bf["wsj"] * diff * minv[bf["mine"]]).ravel()
            )
        return res

    # -- time stepping ------------------------------------------------------------------

    def cfl_dt(self, cfl: float = 0.3) -> float:
        """CFL bound from the reference-space wave speed, with the usual
        (2p + 1) high-order penalty."""
        cref = np.linalg.norm(self.cvec.reshape(-1, 3), axis=1)
        cmax = cref.max()
        if cmax <= 0:
            raise ValueError("zero advection speed everywhere")
        # reference element has length 2; LGL min spacing ~ 2/p^2 handled
        # by the (2p+1) factor
        return cfl * 2.0 / (cmax * (2 * self.p + 1))

    def advance(self, u: np.ndarray, dt: float, n_steps: int, t0: float = 0.0) -> np.ndarray:
        return self._rk.advance(self.rate, u, t0, dt, n_steps)

    def project(self, func: Callable[[np.ndarray], np.ndarray]) -> np.ndarray:
        """Nodal interpolation of an initial condition."""
        return func(self.x)

    def total_mass(self, u: np.ndarray) -> float:
        return float((self.Mdiag.ravel() * u).sum())
