"""Matrix-based vs tensor-product element derivative kernels.

Section VII analyzes two implementations of the reference-space gradient
of a nodal field on a ``(p+1)^3`` spectral element:

- **matrix-based**: three precomputed dense ``(p+1)^3 x (p+1)^3``
  matrices, applied as large matrix-matrix multiplies across all elements
  — ``6 (p+1)^6`` flops per element, extremely cache/BLAS friendly;
- **tensor-product**: exploit the Kronecker structure and contract the 1-D
  differentiation matrix along each axis — ``6 (p+1)^4`` flops per
  element, asymptotically optimal but smaller matrices.

The crossover order between the two on a given machine is exactly the
experiment reported for Ranger (between p = 2 and p = 4); the benchmark
``benchmarks/bench_sec7_dg_kernels.py`` reproduces it on this host and
:meth:`repro.parallel.machine.MachineModel.t_element_kernel` prices both
variants with the paper's sustained rates.

Both kernels return ``(du/dr, du/ds, du/dt)`` in reference coordinates;
the DG solver composes them with metric terms.

This module is the shared kernel layer for *all* element-batched tensor
algebra in the code base: the DG solver uses :class:`DerivativeKernel`
directly, and the low-order FEM matrix-free apply engine
(:mod:`repro.fem.matfree`) builds its fused Gauss-point evaluation
matrices from the same 1-D factors through :func:`kron3` /
:func:`contract_axis`.  Every kernel is batched over elements — operands
carry arbitrary leading batch axes ``(..., n^3)`` (elements, or elements
x fields), so one call applies the operator to the whole mesh at once.
"""

from __future__ import annotations

import numpy as np

from .lgl import diff_matrix, lgl_nodes

__all__ = [
    "DerivativeKernel",
    "matrix_flops",
    "tensor_flops",
    "matrix_bytes",
    "tensor_bytes",
    "kron3",
    "contract_axis",
]


def matrix_flops(p: int) -> int:
    """Flops per element for the matrix-based gradient: 6 (p+1)^6."""
    return 6 * (p + 1) ** 6


def tensor_flops(p: int) -> int:
    """Flops per element for the tensor-product gradient: 6 (p+1)^4."""
    return 6 * (p + 1) ** 4


def matrix_bytes(p: int) -> int:
    """Bytes streamed per element by the matrix-based gradient: the field
    is read once per derivative matrix and three gradients are written
    (the three dense ``(p+1)^3`` square matrices stay cache-resident
    across a batch and are not charged per element)."""
    n3 = (p + 1) ** 3
    return 8 * (3 * n3 + 3 * n3)


def tensor_bytes(p: int) -> int:
    """Bytes streamed per element by the tensor-product gradient: one
    field read and one gradient write per axis (the 1-D matrices are
    negligible)."""
    n3 = (p + 1) ** 3
    return 8 * (3 * n3 + 3 * n3)


def kron3(az: np.ndarray, ay: np.ndarray, ax: np.ndarray) -> np.ndarray:
    """``kron(Az, Ay, Ax)`` for 1-D factor matrices, matching the node
    ordering ``u[..., k, j, i]`` (x fastest).  Used to *fuse* a
    sum-factorized operator into a single small dense matrix when the 1-D
    extent is tiny (the ``n = 2`` trilinear FEM case, where per-axis
    passes cost more in memory traffic than they save in flops)."""
    return np.kron(az, np.kron(ay, ax))


def contract_axis(A: np.ndarray, u: np.ndarray, axis: int) -> np.ndarray:
    """Contract the 1-D operator ``A`` (shape ``(m, n)``) along one
    tensor axis of an element-batched field.

    ``u`` has shape ``(..., n_t, n_s, n_r)`` with arbitrary leading batch
    axes (elements, or elements x fields); ``axis`` counts 0 = r (x,
    fastest), 1 = s (y), 2 = t (z).  Returns the same shape with the
    contracted axis replaced by ``m``.  This is the single primitive of
    the sum-factorized (tensor-product) variant: one gradient is three
    calls, ``6 (p+1)^4`` flops per element instead of ``6 (p+1)^6``.
    """
    # operate on the last three axes; einsum handles leading batch dims
    if axis == 0:
        return np.einsum("ab,...tsb->...tsa", A, u)
    if axis == 1:
        return np.einsum("ab,...tbr->...tar", A, u)
    if axis == 2:
        return np.einsum("ab,...bsr->...asr", A, u)
    raise ValueError(f"axis must be 0, 1, or 2, got {axis}")


class DerivativeKernel:
    """Reference-space gradient on batches of spectral elements.

    Node ordering within an element is ``u[..., k, j, i]`` flattened C-style
    (i fastest along r).  Both variants accept arbitrary leading batch
    axes: ``(ne, n^3)`` applies the kernel to every element of a mesh at
    once, ``(ne, nfields, n^3)`` to every field of every element (the
    element-batched form shared by the DG and FEM layers).
    """

    def __init__(self, p: int):
        self.p = p
        self.n = p + 1
        self.nodes, self.weights = lgl_nodes(p)
        self.D = diff_matrix(self.nodes)  # (n, n)
        n = self.n
        # dense 3-D derivative matrices for the matrix-based variant
        I = np.eye(n)
        self.Dr_full = kron3(I, I, self.D)
        self.Ds_full = kron3(I, self.D, I)
        self.Dt_full = kron3(self.D, I, I)

    # -- variants ------------------------------------------------------------

    def gradient_matrix(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Matrix-based: ``u`` is (..., n^3); three dense matmuls."""
        return (u @ self.Dr_full.T, u @ self.Ds_full.T, u @ self.Dt_full.T)

    def gradient_tensor(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tensor-product: contract D along each axis of (..., n, n, n)."""
        n = self.n
        batch = u.shape[:-1]
        v = u.reshape(*batch, n, n, n)  # [..., t, s, r]
        dr = contract_axis(self.D, v, 0).reshape(*batch, -1)
        ds = contract_axis(self.D, v, 1).reshape(*batch, -1)
        dt = contract_axis(self.D, v, 2).reshape(*batch, -1)
        return dr, ds, dt

    def gradient(self, u: np.ndarray, variant: str = "tensor"):
        if variant == "tensor":
            return self.gradient_tensor(u)
        if variant == "matrix":
            return self.gradient_matrix(u)
        raise ValueError(f"unknown variant {variant!r}")

    def flops(self, variant: str, n_elements: int) -> int:
        if variant == "tensor":
            return tensor_flops(self.p) * n_elements
        if variant == "matrix":
            return matrix_flops(self.p) * n_elements
        raise ValueError(f"unknown variant {variant!r}")

    def bytes(self, variant: str, n_elements: int) -> int:
        """Bytes streamed through memory by one gradient of ``n_elements``
        elements (prices the bandwidth-bound side of the roofline)."""
        if variant == "tensor":
            return tensor_bytes(self.p) * n_elements
        if variant == "matrix":
            return matrix_bytes(self.p) * n_elements
        raise ValueError(f"unknown variant {variant!r}")
