"""Matrix-based vs tensor-product element derivative kernels.

Section VII analyzes two implementations of the reference-space gradient
of a nodal field on a ``(p+1)^3`` spectral element:

- **matrix-based**: three precomputed dense ``(p+1)^3 x (p+1)^3``
  matrices, applied as large matrix-matrix multiplies across all elements
  — ``6 (p+1)^6`` flops per element, extremely cache/BLAS friendly;
- **tensor-product**: exploit the Kronecker structure and contract the 1-D
  differentiation matrix along each axis — ``6 (p+1)^4`` flops per
  element, asymptotically optimal but smaller matrices.

The crossover order between the two on a given machine is exactly the
experiment reported for Ranger (between p = 2 and p = 4); the benchmark
``benchmarks/bench_sec7_dg_kernels.py`` reproduces it on this host.

Both kernels return ``(du/dr, du/ds, du/dt)`` in reference coordinates;
the DG solver composes them with metric terms.
"""

from __future__ import annotations

import numpy as np

from .lgl import diff_matrix, lgl_nodes

__all__ = ["DerivativeKernel", "matrix_flops", "tensor_flops"]


def matrix_flops(p: int) -> int:
    """Flops per element for the matrix-based gradient: 6 (p+1)^6."""
    return 6 * (p + 1) ** 6


def tensor_flops(p: int) -> int:
    """Flops per element for the tensor-product gradient: 6 (p+1)^4."""
    return 6 * (p + 1) ** 4


class DerivativeKernel:
    """Reference-space gradient on batches of spectral elements.

    Node ordering within an element is ``u[..., k, j, i]`` flattened C-style
    (i fastest along r).
    """

    def __init__(self, p: int):
        self.p = p
        self.n = p + 1
        self.nodes, self.weights = lgl_nodes(p)
        self.D = diff_matrix(self.nodes)  # (n, n)
        n = self.n
        # dense 3-D derivative matrices for the matrix-based variant
        I = np.eye(n)
        self.Dr_full = np.kron(np.kron(I, I), self.D)
        self.Ds_full = np.kron(np.kron(I, self.D), I)
        self.Dt_full = np.kron(np.kron(self.D, I), I)

    # -- variants ------------------------------------------------------------

    def gradient_matrix(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Matrix-based: ``u`` is (ne, n^3); three dense matmuls."""
        return (u @ self.Dr_full.T, u @ self.Ds_full.T, u @ self.Dt_full.T)

    def gradient_tensor(self, u: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tensor-product: contract D along each axis of (ne, n, n, n)."""
        ne = u.shape[0]
        n = self.n
        v = u.reshape(ne, n, n, n)  # [e, t, s, r]
        dr = np.einsum("ab,etsb->etsa", self.D, v).reshape(ne, -1)
        ds = np.einsum("ab,etbr->etar", self.D, v).reshape(ne, -1)
        dt = np.einsum("ab,ebsr->easr", self.D, v).reshape(ne, -1)
        return dr, ds, dt

    def gradient(self, u: np.ndarray, variant: str = "tensor"):
        if variant == "tensor":
            return self.gradient_tensor(u)
        if variant == "matrix":
            return self.gradient_matrix(u)
        raise ValueError(f"unknown variant {variant!r}")

    def flops(self, variant: str, n_elements: int) -> int:
        if variant == "tensor":
            return tensor_flops(self.p) * n_elements
        if variant == "matrix":
            return matrix_flops(self.p) * n_elements
        raise ValueError(f"unknown variant {variant!r}")
