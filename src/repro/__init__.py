"""repro — reproduction of Burstedde et al., "Scalable Adaptive Mantle
Convection Simulation on Petascale Supercomputers" (SC 2008).

Subpackages
-----------
parallel:
    Simulated-MPI SPMD substrate (threads + MPI-like communicator) and the
    Ranger machine model used to price measured operation counts at the
    paper's core counts.
octree:
    Morton-ordered linear octrees, serial and distributed; the parallel
    ALPS tree functions (NewTree, Refine/CoarsenTree, BalanceTree,
    PartitionTree).
mesh:
    Hexahedral mesh extraction from octrees: hanging-node constraints,
    ghost layers, global dof numbering; field interpolation and transfer;
    MarkElements.
fem:
    Trilinear hexahedral finite elements: SUPG advection-diffusion,
    variable-viscosity Stokes blocks, constraint-eliminated assembly.
solvers:
    MINRES, smoothed-aggregation AMG, the block-diagonal Stokes
    preconditioner, explicit time integrators.
rhea:
    The mantle convection application: viscosity laws with yielding,
    the coupled Boussinesq time loop, error indicators.
forest:
    Forest-of-octrees (p4est): multi-tree connectivities, inter-tree
    2:1 balance, cubed-sphere spherical shells.
mangll:
    High-order nodal discontinuous Galerkin on hexahedra: LGL operators,
    matrix vs tensor-product derivative kernels, DG advection.
amr:
    The end-to-end adaptation pipeline of Figure 4 with per-function
    timing breakdowns.
analysis:
    Correctness tooling: the SPMD static linter (rules R1-R6), runtime
    sanitizers (CheckedComm, freeze guards, delivery fuzzer), and the
    markdown link checker run by the docs CI.
checkpoint:
    Rank-sharded checkpoint/restart: self-describing manifests,
    digest-verified shards, resume onto any rank count via Morton-curve
    repartition.
perf:
    Scaling-experiment harnesses, table formatters for the paper's
    figures, and the ``regress`` benchmark suites behind the
    ``BENCH_*.json`` artifacts.
obs:
    Observability: hierarchical per-rank phase timers with
    communication attribution, Chrome-trace export, and the paper's
    Table IV-VI-style report generator (see OBSERVABILITY.md).
"""

__version__ = "0.1.0"
